//! `perceus-bench` — the parallel throughput driver (§2.7.2) and the
//! deterministic counter gate.
//!
//! ```text
//! perceus-bench --workload rbtree --threads 4 [--n SIZE]
//!               [--strategy perceus] [--repeat 3] [--profile]
//! perceus-bench --counters-json [FILE]
//! perceus-bench --check-baseline BENCH_BASELINE.json [--tolerance 0]
//! ```
//!
//! Runs N abstract machines concurrently (see
//! [`perceus_suite::parallel`]): workloads with a shared-input split
//! (map, refs) share one immutable structure through the atomic-header
//! segment, the rest run independent `main(n)` instances per thread.
//! Each repeat reports aggregate throughput and the merged statistics;
//! the join-time garbage-free audit runs over both heap segments after
//! every repeat and any failure exits 1. `--profile` re-runs the
//! workload once with the attributed profiler on and appends a
//! per-function breakdown of the RC traffic.
//!
//! The two baseline modes skip the throughput bench entirely:
//! `--counters-json` prints (or writes) the canonical deterministic
//! counters of every workload ([`perceus_bench::counters`]), and
//! `--check-baseline` compares the current counters against a committed
//! file, exiting 1 on any drift beyond `--tolerance` (a relative
//! fraction; the CI gate uses 0).
//!
//! `--backend native` routes execution through the codegen backend
//! (docs/CODEGEN.md): with `--check-baseline` the counters come from
//! the compiled executor (the same committed baseline must hold at
//! zero tolerance — the schedule-identity proof); without it, the
//! default mode becomes a machine-vs-native wall-clock record over a
//! comma-separated `--workload` list, emitted as one JSON line (the
//! `native-speedup` CI artifact).

use perceus_bench::counters::Baseline;
use perceus_runtime::machine::RunConfig;
use perceus_suite::{run_contended, run_parallel, workload, workloads, ReadMode, Strategy};
use std::process::ExitCode;

struct Options {
    /// `None` means the per-mode default (rbtree for the throughput
    /// bench, map for `--read-scaling`).
    workload: Option<String>,
    threads: u32,
    n: Option<i64>,
    strategy: Strategy,
    repeat: usize,
    profile: bool,
    /// `Some("-")` prints to stdout.
    counters_json: Option<String>,
    check_baseline: Option<String>,
    check_certs: Option<String>,
    tolerance: f64,
    /// `Some("-")` prints to stdout.
    read_scaling: Option<String>,
    backend: Backend,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// The abstract machine (interpreter) — the default.
    Machine,
    /// The codegen backend: workloads compiled to Rust and run in the
    /// native executor subprocess.
    Native,
}

fn usage() -> ! {
    eprintln!(
        "usage: perceus-bench --workload NAME [--threads N] [--n SIZE]\n\
         \x20                    [--strategy NAME] [--repeat K] [--profile]\n\
         \x20      perceus-bench --counters-json [FILE|-]\n\
         \x20      perceus-bench --check-baseline FILE [--tolerance 0]\n\
         \x20      perceus-bench --check-certs FILE\n\
         \x20      perceus-bench --read-scaling [FILE|-] [--workload map] [--n SIZE]\n\
         \x20      perceus-bench --backend native [--workload rbtree,map] [--repeat 3]\n\
         \x20      perceus-bench --backend native --check-baseline FILE [--tolerance 0]\n\
         workloads: {}\n\
         strategies: {}",
        workloads()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", "),
        Strategy::ALL
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        workload: None,
        threads: 4,
        n: None,
        strategy: Strategy::Perceus,
        repeat: 3,
        profile: false,
        counters_json: None,
        check_baseline: None,
        check_certs: None,
        tolerance: 0.0,
        read_scaling: None,
        backend: Backend::Machine,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{what} requires a value");
            usage()
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => opts.workload = Some(value(&args, &mut i, "--workload")),
            "--threads" => match value(&args, &mut i, "--threads").parse() {
                Ok(t) if t > 0 => opts.threads = t,
                _ => usage(),
            },
            "--n" => match value(&args, &mut i, "--n").parse() {
                Ok(n) => opts.n = Some(n),
                Err(_) => usage(),
            },
            "--repeat" => match value(&args, &mut i, "--repeat").parse() {
                Ok(k) if k > 0 => opts.repeat = k,
                _ => usage(),
            },
            "--strategy" => {
                let name = value(&args, &mut i, "--strategy");
                match Strategy::ALL.iter().find(|s| s.label() == name) {
                    Some(s) => opts.strategy = *s,
                    None => usage(),
                }
            }
            "--profile" => opts.profile = true,
            "--counters-json" => {
                // The file operand is optional: a following flag (or
                // nothing) means stdout.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        opts.counters_json = Some(next.clone());
                        i += 1;
                    }
                    _ => opts.counters_json = Some("-".to_string()),
                }
            }
            "--check-baseline" => {
                opts.check_baseline = Some(value(&args, &mut i, "--check-baseline"))
            }
            "--check-certs" => opts.check_certs = Some(value(&args, &mut i, "--check-certs")),
            "--read-scaling" => {
                // The file operand is optional, as for --counters-json.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        opts.read_scaling = Some(next.clone());
                        i += 1;
                    }
                    _ => opts.read_scaling = Some("-".to_string()),
                }
            }
            "--backend" => match value(&args, &mut i, "--backend").as_str() {
                "machine" => opts.backend = Backend::Machine,
                "native" => opts.backend = Backend::Native,
                _ => usage(),
            },
            "--tolerance" => match value(&args, &mut i, "--tolerance").parse() {
                Ok(t) if t >= 0.0 => opts.tolerance = t,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    opts
}

/// `--counters-json`: print or write the current canonical counters.
fn run_counters_json(target: &str) -> ExitCode {
    let current = match perceus_bench::counters::collect() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("counter collection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = current.render_json();
    if target == "-" {
        print!("{json}");
        return ExitCode::SUCCESS;
    }
    match std::fs::write(target, &json) {
        Ok(()) => {
            eprintln!(
                "wrote {} workload baselines to {target}",
                current.workloads.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {target}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--check-baseline`: recompute the counters — on the machine or, with
/// `--backend native`, through the compiled executor — and gate on
/// drift against the committed file.
fn run_check_baseline(path: &str, tolerance: f64, backend: Backend) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Baseline::parse_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let current = match backend {
        Backend::Machine => match perceus_bench::counters::collect() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("counter collection failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        Backend::Native => match perceus_bench::counters::collect_native() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("native counter collection failed: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let label = match backend {
        Backend::Machine => "machine",
        Backend::Native => "native",
    };
    let violations = baseline.check(&current, tolerance);
    if violations.is_empty() {
        println!(
            "counter gate ({label}): OK — {} workloads x {} counters match {path} \
             (tolerance {tolerance})",
            baseline.workloads.len(),
            perceus_bench::COUNTER_KEYS.len(),
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "counter gate ({label}): FAILED — {} violation(s) against {path} \
             (tolerance {tolerance})",
            violations.len()
        );
        for v in &violations {
            println!("  {v}");
        }
        println!("if the change is intentional, regenerate with:");
        println!("  cargo run --release -p perceus-bench -- --counters-json {path}");
        ExitCode::FAILURE
    }
}

/// `--check-certs`: re-certify every baseline workload and replay it
/// under the profiler against the certified bounds.
fn run_check_certs(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Baseline::parse_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = match perceus_bench::check_certs(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cert gate failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!(
            "cert gate: OK — {} workloads certified, checked and replayed within bounds",
            baseline.workloads.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("cert gate: FAILED — {} violation(s)", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}

/// `--read-scaling`: the contended read-mostly workload at 1, 8 and 32
/// worker threads, under both guard-protected snapshot reads and the
/// owned atomic-RMW baseline, emitted as one JSON record (the artifact
/// the CI threaded-smoke job records). Fails if any snapshot run pays
/// an atomic RMW or leaves the segment undrained — the wall-clock
/// ratio is reported but not gated, since it only means something on
/// hardware with real parallelism (`cores` is in the record).
fn run_read_scaling(opts: &Options, target: &str) -> ExitCode {
    let name = opts.workload.as_deref().unwrap_or("map");
    let Some(w) = workload(name) else {
        eprintln!("unknown workload `{name}`");
        usage();
    };
    if w.parallel.is_none() {
        eprintln!("workload `{name}` has no shared-input split");
        return ExitCode::FAILURE;
    }
    let n = opts.n.unwrap_or(w.test_n);
    let reps: u32 = 8;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut entries = Vec::new();
    let mut gate_ok = true;
    for threads in [1u32, 8, 32] {
        let mut tputs = [0.0f64; 2];
        for (slot, mode) in [ReadMode::Snapshot, ReadMode::Owned]
            .into_iter()
            .enumerate()
        {
            let out = match run_contended(&w, mode, n, threads, reps, RunConfig::default()) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("{name} ({} @ {threads} threads): {e}", mode.label());
                    return ExitCode::FAILURE;
                }
            };
            if mode == ReadMode::Snapshot
                && (out.read_atomics != 0 || out.shared_audit.live_blocks != 0)
            {
                eprintln!(
                    "{name} (snapshot @ {threads} threads): gate failed — \
                     {} read-phase atomic RMWs, {} live blocks at join",
                    out.read_atomics, out.shared_audit.live_blocks
                );
                gate_ok = false;
            }
            tputs[slot] = out.throughput();
            entries.push(format!(
                "{{\"threads\":{threads},\"mode\":\"{}\",\"elapsed_secs\":{:.6},\
                 \"throughput\":{:.3},\"read_atomics\":{},\"reclaimed_blocks\":{}}}",
                mode.label(),
                out.elapsed.as_secs_f64(),
                out.throughput(),
                out.read_atomics,
                out.reclaimed_blocks,
            ));
        }
        entries.push(format!(
            "{{\"threads\":{threads},\"mode\":\"ratio\",\"snapshot_over_owned\":{:.3}}}",
            tputs[0] / tputs[1].max(1e-9)
        ));
    }
    let json = format!(
        "{{\"workload\":\"{name}\",\"n\":{n},\"reps\":{reps},\"cores\":{cores},\
         \"entries\":[{}]}}\n",
        entries.join(",")
    );
    if target == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(target, &json) {
        eprintln!("cannot write {target}: {e}");
        return ExitCode::FAILURE;
    } else {
        eprintln!("wrote read-scaling record to {target}");
    }
    if gate_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--backend native` (no gate flag): the machine-vs-native wall-clock
/// record. Both executors run the same compiled workloads; each side
/// keeps its best-of-`--repeat` run time. The record is one JSON line
/// on stdout (the CI `native-speedup` artifact) — informational, not a
/// gate: wall time is hardware-dependent, unlike the counters.
fn run_native_speedup(opts: &Options) -> ExitCode {
    use perceus_suite::native::NativeHarness;

    let list = opts.workload.clone().unwrap_or_else(|| "rbtree,map".into());
    let names: Vec<&str> = list.split(',').map(str::trim).collect();
    let mut selected = Vec::new();
    for name in &names {
        match workload(name) {
            Some(w) => selected.push(w),
            None => {
                eprintln!("unknown workload `{name}`");
                usage();
            }
        }
    }
    let harness = match NativeHarness::for_workloads(&names, opts.strategy) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("native build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows = Vec::new();
    for w in &selected {
        let n = opts.n.unwrap_or(w.default_n);
        let (mut machine_ns, mut native_ns) = (u64::MAX, u64::MAX);
        for _ in 0..opts.repeat {
            let m = match harness.run_machine(w.name, n) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}: {e}", w.name);
                    return ExitCode::FAILURE;
                }
            };
            let nv = match harness.run_native(w.name, n) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{}: {e}", w.name);
                    return ExitCode::FAILURE;
                }
            };
            if !m.ok || !nv.ok {
                eprintln!(
                    "{}: run failed (machine ok={}, native ok={})",
                    w.name, m.ok, nv.ok
                );
                return ExitCode::FAILURE;
            }
            machine_ns = machine_ns.min(m.wall_ns);
            native_ns = native_ns.min(nv.wall_ns);
        }
        let speedup = machine_ns as f64 / (native_ns as f64).max(1.0);
        eprintln!(
            "{:>10}  n={n:<8} machine={machine_ns:>12}ns native={native_ns:>12}ns \
             speedup={speedup:.2}x",
            w.name
        );
        rows.push(format!(
            "{{\"name\":\"{}\",\"n\":{n},\"machine_ns\":{machine_ns},\
             \"native_ns\":{native_ns},\"speedup\":{speedup:.3}}}",
            w.name
        ));
    }
    println!(
        "{{\"backend\":\"native\",\"strategy\":\"{}\",\"repeat\":{},\"workloads\":[{}]}}",
        opts.strategy.label(),
        opts.repeat,
        rows.join(",")
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_args();
    if let Some(target) = &opts.counters_json {
        return run_counters_json(target);
    }
    if let Some(path) = &opts.check_baseline {
        return run_check_baseline(path, opts.tolerance, opts.backend);
    }
    if let Some(path) = &opts.check_certs {
        return run_check_certs(path);
    }
    if let Some(target) = opts.read_scaling.clone() {
        return run_read_scaling(&opts, &target);
    }
    if opts.backend == Backend::Native {
        return run_native_speedup(&opts);
    }
    let name = opts.workload.as_deref().unwrap_or("rbtree");
    let Some(w) = workload(name) else {
        eprintln!("unknown workload `{name}`");
        usage();
    };
    let n = opts.n.unwrap_or(w.default_n);
    println!(
        "# perceus-bench: {} under {}, {} threads, n={n}, {} repeats",
        w.name,
        opts.strategy.label(),
        opts.threads,
        opts.repeat
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "repeat", "time", "runs/s", "atomic-ops", "rc-ops", "peak-words", "audit"
    );
    let mut best: Option<f64> = None;
    for k in 0..opts.repeat {
        let out = match run_parallel(&w, opts.strategy, n, opts.threads, RunConfig::default()) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                return ExitCode::FAILURE;
            }
        };
        let tput = out.throughput();
        best = Some(best.map_or(tput, |b: f64| b.max(tput)));
        let audit = match &out.shared_audit {
            Some(a) if a.live_blocks == 0 && a.pinned_blocks == 0 => "ok".to_string(),
            Some(a) => format!("ok({}p)", a.pinned_blocks),
            None => "n/a".to_string(),
        };
        println!(
            "{:<8} {:>9.3}s {:>12.1} {:>12} {:>12} {:>12} {:>8}",
            k + 1,
            out.elapsed.as_secs_f64(),
            tput,
            out.stats.atomic_ops,
            out.stats.rc_ops(),
            out.stats.peak_live_words,
            audit
        );
    }
    println!(
        "# best aggregate throughput: {:.1} runs/s across {} threads",
        best.unwrap_or(0.0),
        opts.threads
    );
    if opts.profile {
        return run_profile_section(&w, &opts, n);
    }
    ExitCode::SUCCESS
}

/// `--profile`: one extra (untimed) run with the attributed profiler on,
/// reporting where the RC traffic and allocations come from.
fn run_profile_section(w: &perceus_suite::Workload, opts: &Options, n: i64) -> ExitCode {
    let config = RunConfig::new().with_profile(true);
    let compiled = match perceus_suite::compile_workload(w.source, opts.strategy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", w.name);
            return ExitCode::FAILURE;
        }
    };
    let out = match run_parallel(w, opts.strategy, n, opts.threads, config) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{}: {e}", w.name);
            return ExitCode::FAILURE;
        }
    };
    let Some(profiler) = out.profile else {
        eprintln!("{}: run produced no profile", w.name);
        return ExitCode::FAILURE;
    };
    println!(
        "# profile (one extra run, {} threads, merged)",
        opts.threads
    );
    println!(
        "{:<24} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "function", "calls", "rc-ops", "allocs", "words", "reuses"
    );
    for r in profiler.per_frame() {
        println!(
            "{:<24} {:>8} {:>12} {:>10} {:>12} {:>10}",
            r.frame.name(&compiled),
            r.calls,
            r.counts.rc_ops(),
            r.counts.allocations,
            r.counts.alloc_words,
            r.counts.reuses
        );
    }
    let t = profiler.totals();
    println!(
        "# profile totals: {} rc-ops, {} allocations, {} reuses",
        t.rc_ops(),
        t.allocations,
        t.reuses
    );
    ExitCode::SUCCESS
}
