//! `perceus-bench` — the parallel throughput driver (§2.7.2).
//!
//! ```text
//! perceus-bench --workload rbtree --threads 4 [--n SIZE]
//!               [--strategy perceus] [--repeat 3]
//! ```
//!
//! Runs N abstract machines concurrently (see
//! [`perceus_suite::parallel`]): workloads with a shared-input split
//! (map, refs) share one immutable structure through the atomic-header
//! segment, the rest run independent `main(n)` instances per thread.
//! Each repeat reports aggregate throughput and the merged statistics;
//! the join-time garbage-free audit runs over both heap segments after
//! every repeat and any failure exits 1.

use perceus_runtime::machine::RunConfig;
use perceus_suite::{run_parallel, workload, workloads, Strategy};
use std::process::ExitCode;

struct Options {
    workload: String,
    threads: u32,
    n: Option<i64>,
    strategy: Strategy,
    repeat: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: perceus-bench --workload NAME [--threads N] [--n SIZE]\n\
         \x20                    [--strategy NAME] [--repeat K]\n\
         workloads: {}\n\
         strategies: {}",
        workloads()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", "),
        Strategy::ALL
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        workload: "rbtree".to_string(),
        threads: 4,
        n: None,
        strategy: Strategy::Perceus,
        repeat: 3,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("{what} requires a value");
            usage()
        });
        match a.as_str() {
            "--workload" => opts.workload = value("--workload"),
            "--threads" => match value("--threads").parse() {
                Ok(t) if t > 0 => opts.threads = t,
                _ => usage(),
            },
            "--n" => match value("--n").parse() {
                Ok(n) => opts.n = Some(n),
                Err(_) => usage(),
            },
            "--repeat" => match value("--repeat").parse() {
                Ok(k) if k > 0 => opts.repeat = k,
                _ => usage(),
            },
            "--strategy" => {
                let name = value("--strategy");
                match Strategy::ALL.iter().find(|s| s.label() == name) {
                    Some(s) => opts.strategy = *s,
                    None => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let Some(w) = workload(&opts.workload) else {
        eprintln!("unknown workload `{}`", opts.workload);
        usage();
    };
    let n = opts.n.unwrap_or(w.default_n);
    println!(
        "# perceus-bench: {} under {}, {} threads, n={n}, {} repeats",
        w.name,
        opts.strategy.label(),
        opts.threads,
        opts.repeat
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "repeat", "time", "runs/s", "atomic-ops", "rc-ops", "peak-words", "audit"
    );
    let mut best: Option<f64> = None;
    for k in 0..opts.repeat {
        let out = match run_parallel(&w, opts.strategy, n, opts.threads, RunConfig::default()) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{}: {e}", w.name);
                return ExitCode::FAILURE;
            }
        };
        let tput = out.throughput();
        best = Some(best.map_or(tput, |b: f64| b.max(tput)));
        let audit = match &out.shared_audit {
            Some(a) if a.live_blocks == 0 && a.pinned_blocks == 0 => "ok".to_string(),
            Some(a) => format!("ok({}p)", a.pinned_blocks),
            None => "n/a".to_string(),
        };
        println!(
            "{:<8} {:>9.3}s {:>12.1} {:>12} {:>12} {:>12} {:>8}",
            k + 1,
            out.elapsed.as_secs_f64(),
            tput,
            out.stats.atomic_ops,
            out.stats.rc_ops(),
            out.stats.peak_live_words,
            audit
        );
    }
    println!(
        "# best aggregate throughput: {:.1} runs/s across {} threads",
        best.unwrap_or(0.0),
        opts.threads
    );
    ExitCode::SUCCESS
}
