//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures [EXPERIMENT…] [--repeat K] [--scale PCT] [--n NAME=SIZE]
//!
//! experiments:
//!   fig9-time   Fig. 9 (top): relative execution time per strategy
//!   fig9-rss    Fig. 9 (bottom): relative peak working set
//!   rcops       §2.3–2.5: reference-count operation counts
//!   fbip        §2.6: FBIP traversal — allocation-free in-place mapping
//!   ablate      per-optimization ablation (reuse, drop-spec, …)
//!   shared      §2.7.2: thread-shared atomic operation costs
//!   borrow      §6 extension: inferred borrowed parameters
//!   alloc       allocator ablation: size-class free lists on vs. off
//!   extra       additional workloads (msort, binarytrees, queue, …)
//!   all         everything above (default)
//! ```
//!
//! The figures normalize to the full-Perceus configuration, exactly as
//! the paper normalizes to Koka. Fig. 11 (Appendix C) is the same
//! harness re-run on a second machine; invoke `fig9-time`/`fig9-rss`
//! there.

use perceus_bench::measure::{measure, Measurement};
use perceus_core::passes::{Ablation, PassConfig};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{
    compile_with_config, run_parallel, run_workload, workload, workloads, Strategy, Workload,
};
use std::collections::HashMap;

struct Options {
    experiments: Vec<String>,
    repeat: usize,
    scale: f64,
    sizes: HashMap<String, i64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        experiments: Vec::new(),
        repeat: 3,
        scale: 1.0,
        sizes: HashMap::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--repeat" => {
                opts.repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeat K");
            }
            "--scale" => {
                let pct: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale PCT");
                opts.scale = pct / 100.0;
            }
            "--n" => {
                let kv = args.next().expect("--n NAME=SIZE");
                let (name, size) = kv.split_once('=').expect("--n NAME=SIZE");
                opts.sizes
                    .insert(name.to_string(), size.parse().expect("size"));
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = [
            "fig9-time",
            "fig9-rss",
            "rcops",
            "fbip",
            "ablate",
            "shared",
            "borrow",
            "alloc",
            "extra",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    opts
}

fn size_for(opts: &Options, w: &Workload) -> i64 {
    opts.sizes
        .get(w.name)
        .copied()
        .unwrap_or(((w.default_n as f64) * opts.scale).max(1.0) as i64)
}

fn main() {
    let opts = parse_args();
    println!("# Perceus reproduction — figure harness");
    println!(
        "# repeat={} scale={:.0}%  (strategies: {})",
        opts.repeat,
        opts.scale * 100.0,
        Strategy::ALL
            .iter()
            .map(|s| format!("{} = {}", s.label(), s.paper_column()))
            .collect::<Vec<_>>()
            .join("; ")
    );
    for e in opts.experiments.clone() {
        match e.as_str() {
            "fig9-time" => fig9(&opts, Metric::Time),
            "fig9-rss" => fig9(&opts, Metric::PeakWords),
            "rcops" => rcops(&opts),
            "fbip" => fbip(&opts),
            "ablate" => ablate(&opts),
            "shared" => shared(&opts),
            "borrow" => borrow(&opts),
            "alloc" => alloc_ablation(&opts),
            "extra" => extra(&opts),
            other => eprintln!("unknown experiment `{other}` (skipped)"),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Metric {
    Time,
    PeakWords,
}

/// Fig. 9: the five benchmarks × five strategies, normalized to Perceus.
fn fig9(opts: &Options, metric: Metric) {
    match metric {
        Metric::Time => println!("\n## Fig. 9 (top): relative execution time (lower is better)"),
        Metric::PeakWords => {
            println!("\n## Fig. 9 (bottom): relative peak working set (live heap words)")
        }
    }
    println!(
        "{:<12} {:>9} | {:>14} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "n", "perceus", "no-opt", "scoped-rc", "tracing-gc", "arena"
    );
    for w in workloads().iter().filter(|w| w.in_figure9) {
        let n = size_for(opts, w);
        let mut cells = Vec::new();
        let mut base: Option<f64> = None;
        let mut result: Option<i64> = None;
        for s in Strategy::ALL {
            match measure(w, s, n, opts.repeat) {
                Ok(m) => {
                    if let Some(r) = result {
                        assert_eq!(r, m.result, "{}: strategies disagree!", w.name);
                    }
                    result = Some(m.result);
                    let v = match metric {
                        Metric::Time => m.secs(),
                        Metric::PeakWords => m.stats.peak_live_words as f64,
                    };
                    let b = *base.get_or_insert(v);
                    let cell = match metric {
                        Metric::Time => format!("{:>6.2}x {:>6.2}s", v / b, v),
                        Metric::PeakWords => {
                            format!("{:>6.2}x {:>6}k", v / b, (v / 1000.0) as u64)
                        }
                    };
                    cells.push(cell);
                }
                Err(e) => cells.push(format!("error: {e}")),
            }
        }
        println!(
            "{:<12} {:>9} | {}",
            w.name,
            n,
            cells
                .iter()
                .map(|c| format!("{c:>14}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

/// §2.3–2.5: counts of reference-count operations and allocations — the
/// quantities the optimizations remove.
fn rcops(opts: &Options) {
    println!("\n## rc operations (map over a fresh list; rbtree)");
    println!(
        "{:<10} {:<16} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "benchmark", "strategy", "dup", "drop", "decref", "is-unique", "alloc", "reuse", "reuse%"
    );
    for name in ["map", "rbtree"] {
        let w = workload(name).expect("registered");
        let n = size_for(opts, &w).min(20_000);
        for s in [Strategy::Perceus, Strategy::PerceusNoOpt, Strategy::Scoped] {
            let m = measure(&w, s, n, 1).expect("measure");
            let st = m.stats;
            println!(
                "{:<10} {:<16} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7.1}%",
                name,
                s.label(),
                st.dups,
                st.drops,
                st.decrefs,
                st.unique_tests,
                st.allocations,
                st.reuses,
                st.reuse_rate() * 100.0
            );
        }
    }
}

/// §2.6: the FBIP traversal maps a tree with zero fresh allocations and
/// zero continuation-stack growth; the recursive version allocates
/// frames instead.
fn fbip(opts: &Options) {
    println!("\n## FBIP (§2.6): in-order tree map, unique tree");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "variant", "n", "time", "alloc", "reuse", "skipped-wr", "result"
    );
    for name in ["tmap", "tmap-rec"] {
        let w = workload(name).expect("registered");
        let n = size_for(opts, &w);
        let m = measure(&w, Strategy::Perceus, n, opts.repeat).expect("measure");
        // Building the input tree takes n allocations; everything the
        // traversal itself does should be reuse.
        println!(
            "{:<10} {:>9} {:>9.2}s {:>10} {:>12} {:>12} {:>10}",
            name,
            n,
            m.secs(),
            m.stats.allocations,
            m.stats.reuses,
            m.stats.skipped_writes,
            m.result
        );
    }
}

/// Ablation: each optimization individually disabled (the design-choice
/// study DESIGN.md calls out).
fn ablate(opts: &Options) {
    println!("\n## ablation: perceus with one optimization disabled");
    println!(
        "{:<10} {:<22} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "benchmark", "config", "time", "rc-ops", "alloc", "reuse", "peak-words"
    );
    let configs: Vec<(String, PassConfig)> =
        std::iter::once(("full".to_string(), PassConfig::perceus()))
            .chain(
                [
                    Ablation::Reuse,
                    Ablation::ReuseSpec,
                    Ablation::DropSpec,
                    Ablation::Fuse,
                    Ablation::Inline,
                ]
                .into_iter()
                .map(|ab| (format!("without-{ab:?}"), PassConfig::perceus().without(ab))),
            )
            .collect();
    for name in ["rbtree", "cfold"] {
        let w = workload(name).expect("registered");
        let n = size_for(opts, &w).min(20_000);
        for (label, cfg) in &configs {
            let compiled = compile_with_config(w.source, cfg.clone()).expect("compile");
            let start = std::time::Instant::now();
            let out =
                run_workload(&compiled, Strategy::Perceus, n, RunConfig::default()).expect("run");
            let t = start.elapsed();
            println!(
                "{:<10} {:<22} {:>9.2}s {:>12} {:>10} {:>10} {:>12}",
                name,
                label,
                t.as_secs_f64(),
                out.stats.rc_ops(),
                out.stats.allocations,
                out.stats.reuses,
                out.stats.peak_live_words
            );
        }
    }
}

/// §2.7.2: the dual-mode rc costs. In-machine `tshare` flips headers
/// to the sticky-negative encoding on the *local* heap — a slow path,
/// but not an atomic one. Real atomics only appear when a structure
/// crosses a thread boundary through the shared segment, which the
/// parallel driver exercises at increasing thread counts.
fn shared(opts: &Options) {
    println!("\n## thread-shared (§2.7.2): local sticky marking vs. real atomic sharing");
    let w = workload("refs").expect("registered");
    let n = size_for(opts, &w);
    let m = measure(&w, Strategy::Perceus, n, 1).expect("measure");
    let st = m.stats;
    println!(
        "refs(n={n}) single-thread: rc-ops={} local-shared={} ({:.1}%) atomic={} shared-marks={}",
        st.rc_ops(),
        st.local_shared_ops,
        100.0 * st.local_shared_ops as f64 / st.rc_ops().max(1) as f64,
        st.atomic_ops,
        st.shared_marks
    );
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "workload", "threads", "time", "runs/s", "atomic-ops", "rc-ops"
    );
    let w = workload("map").expect("registered");
    let n = size_for(opts, &w).min(20_000);
    for threads in [1, 2, 4] {
        match run_parallel(&w, Strategy::Perceus, n, threads, RunConfig::default()) {
            Ok(out) => println!(
                "{:<10} {:>8} {:>9.2}s {:>12.1} {:>12} {:>12}",
                w.name,
                threads,
                out.elapsed.as_secs_f64(),
                out.throughput(),
                out.stats.atomic_ops,
                out.stats.rc_ops()
            ),
            Err(e) => println!("{} at {threads} threads: {e}", w.name),
        }
    }
}

/// §6 extension: inferred borrowed parameters. Fewer rc operations on
/// inspection-heavy code (the paper's motivation for naming it as
/// future work); programs are no longer garbage-free during a call, but
/// stay balanced — the heap is empty at exit.
fn borrow(opts: &Options) {
    println!("\n## borrowing (§6 extension): owned vs inferred-borrowed parameters");
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "convention", "time", "dup", "drop", "rc-ops", "peak-words"
    );
    for name in ["rbtree", "cfold", "deriv", "nqueens", "map"] {
        let w = workload(name).expect("registered");
        let n = size_for(opts, &w).min(50_000);
        for (label, cfg) in [
            ("owned", PassConfig::perceus()),
            ("borrowed", PassConfig::perceus_borrowing()),
        ] {
            let compiled = compile_with_config(w.source, cfg).expect("compile");
            let start = std::time::Instant::now();
            let out =
                run_workload(&compiled, Strategy::Perceus, n, RunConfig::default()).expect("run");
            let t = start.elapsed();
            assert_eq!(out.leaked_blocks, 0, "borrowing stays balanced");
            println!(
                "{:<10} {:<10} {:>9.2}s {:>12} {:>12} {:>12} {:>12}",
                name,
                label,
                t.as_secs_f64(),
                out.stats.dups,
                out.stats.drops,
                out.stats.rc_ops(),
                out.stats.peak_live_words
            );
        }
    }
}

/// Allocator ablation: the size-class free lists on (default) vs. off
/// (the seed's free-and-reallocate discipline). Hit rate and recycled
/// words quantify how much of each workload's allocation traffic the
/// lists absorb; see docs/RUNTIME.md for the design.
fn alloc_ablation(opts: &Options) {
    println!("\n## allocator ablation: size-class free lists on vs. off");
    println!(
        "{:<10} {:<10} {:>10} {:>12} {:>12} {:>8} {:>14} {:>10}",
        "benchmark",
        "freelists",
        "time",
        "fl-hits",
        "fl-misses",
        "hit%",
        "recycled-words",
        "classes"
    );
    for name in ["rbtree", "cfold", "deriv", "map"] {
        let w = workload(name).expect("registered");
        let n = size_for(opts, &w).min(50_000);
        let compiled = compile_with_config(w.source, PassConfig::perceus()).expect("compile");
        for (label, recycle) in [("on", true), ("off", false)] {
            let cfg = RunConfig::new().with_heap_recycle(recycle);
            let start = std::time::Instant::now();
            let out = run_workload(&compiled, Strategy::Perceus, n, cfg).expect("run");
            let t = start.elapsed();
            let st = out.stats;
            println!(
                "{:<10} {:<10} {:>9.2}s {:>12} {:>12} {:>7.1}% {:>14} {:>10}",
                name,
                label,
                t.as_secs_f64(),
                st.freelist_hits,
                st.freelist_misses,
                st.freelist_hit_rate() * 100.0,
                st.recycled_words,
                out.free_list_occupancy.len()
            );
        }
    }
}

/// Extra workloads beyond the paper's five: the same perceus-vs-GC
/// comparison on merge sort (FBIP-style splits/merges), binary-trees
/// churn, and Okasaki's batched queue.
fn extra(opts: &Options) {
    println!("\n## extra workloads (perceus vs tracing-gc)");
    println!(
        "{:<12} {:>9} {:<12} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "workload", "n", "strategy", "time", "alloc", "reuse", "reuse%", "peak-words"
    );
    for name in ["msort", "binarytrees", "queue", "exn"] {
        let w = workload(name).expect("registered");
        let n = size_for(opts, &w);
        for s in [Strategy::Perceus, Strategy::Gc] {
            match measure(&w, s, n, opts.repeat.min(2)) {
                Ok(m) => println!(
                    "{:<12} {:>9} {:<12} {:>9.2}s {:>10} {:>10} {:>7.1}% {:>12}",
                    name,
                    n,
                    s.label(),
                    m.secs(),
                    m.stats.allocations,
                    m.stats.reuses,
                    m.stats.reuse_rate() * 100.0,
                    m.stats.peak_live_words
                ),
                Err(e) => println!("{name} under {}: {e}", s.label()),
            }
        }
    }
}

// Re-exported measurement type referenced in docs.
#[allow(unused_imports)]
use Measurement as _;
