//! # perceus-bench
//!
//! The measurement harness behind every figure of the paper's
//! evaluation. The [`measure()`] function runs a workload under a strategy
//! with warmup and repetition and reports wall time plus the full
//! runtime statistics; the `figures` binary (`src/bin/figures.rs`)
//! formats the paper's tables; the Criterion benches under `benches/`
//! provide statistically robust timing for the same experiments.

//! The `counters` module turns the deterministic counter subset of
//! [`perceus_runtime::Stats`] into a committed baseline
//! (`BENCH_BASELINE.json`) that CI compares at zero tolerance; the
//! `certgate` module replays the same baseline workloads against their
//! certified symbolic cost bounds (`perceus-bench --check-certs`).

pub mod certgate;
pub mod counters;
pub mod measure;

pub use certgate::check_certs;
pub use counters::{collect, collect_native, Baseline, WorkloadCounters, COUNTER_KEYS};
pub use measure::{measure, Measurement};
