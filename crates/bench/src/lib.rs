//! # perceus-bench
//!
//! The measurement harness behind every figure of the paper's
//! evaluation. The [`measure()`] function runs a workload under a strategy
//! with warmup and repetition and reports wall time plus the full
//! runtime statistics; the `figures` binary (`src/bin/figures.rs`)
//! formats the paper's tables; the Criterion benches under `benches/`
//! provide statistically robust timing for the same experiments.

pub mod measure;

pub use measure::{measure, Measurement};
