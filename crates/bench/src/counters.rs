//! Deterministic per-workload counter baselines and the CI regression
//! gate behind `perceus-bench --check-baseline`.
//!
//! Wall-clock timing is too noisy to gate a shared CI runner, but the
//! *counters* behind the paper's figures — RC operations, allocations,
//! reuse hits, peak liveness, machine steps — are exact, deterministic
//! functions of the compiled program and its input. A single-threaded
//! Perceus run of every registered workload at its test size therefore
//! produces machine-independent numbers that can be committed
//! (`BENCH_BASELINE.json`) and compared with **zero tolerance**: any
//! drift is either an intentional compiler/runtime change (regenerate
//! the baseline and review the diff) or a real regression.
//!
//! The JSON is rendered canonically — workloads sorted by name, counter
//! keys in the fixed [`COUNTER_KEYS`] order, no whitespace — so the
//! committed file is byte-reproducible and diffs stay minimal.
//!
//! ```text
//! perceus-bench --counters-json -             # print current counters
//! perceus-bench --counters-json FILE          # regenerate the baseline
//! perceus-bench --check-baseline BENCH_BASELINE.json --tolerance 0
//! ```

use perceus_runtime::machine::RunConfig;
use perceus_runtime::{Stats, SCHEDULE_KEYS};
use perceus_suite::native::{NativeError, NativeHarness};
use perceus_suite::{compile_workload, run_workload, workloads, Strategy, SuiteError};

/// Schema version of the baseline document.
pub const BASELINE_VERSION: u64 = 1;

/// The gated counters, in canonical render order: the runtime's RC
/// *schedule* ([`perceus_runtime::SCHEDULE_KEYS`]) — exact event counts
/// and high-water marks of a single-threaded run. The volatile
/// quantities (wall time, thread interleavings, `atomic_ops`) are
/// deliberately excluded. The native backend reports the same 18 keys
/// in the same order, so one committed baseline gates both executors.
pub const COUNTER_KEYS: [&str; 18] = SCHEDULE_KEYS;

/// The gated counter values of one run, in [`COUNTER_KEYS`] order.
pub fn counter_values(st: &Stats) -> [u64; 18] {
    st.schedule_values()
}

/// One workload's gated counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadCounters {
    /// Workload name.
    pub name: String,
    /// Problem size the counters were measured at.
    pub n: i64,
    /// `(key, value)` pairs in the baseline's order.
    pub counters: Vec<(String, u64)>,
}

/// A full baseline document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Schema version ([`BASELINE_VERSION`]).
    pub version: u64,
    /// Strategy label the counters were measured under.
    pub strategy: String,
    /// Per-workload counters, sorted by name.
    pub workloads: Vec<WorkloadCounters>,
}

/// Runs every registered workload single-threaded under Perceus at its
/// test size and collects the gated counters.
pub fn collect() -> Result<Baseline, SuiteError> {
    let strategy = Strategy::Perceus;
    let mut rows = Vec::new();
    for w in workloads() {
        let compiled = compile_workload(w.source, strategy)?;
        let out = run_workload(&compiled, strategy, w.test_n, RunConfig::default())?;
        let counters = COUNTER_KEYS
            .iter()
            .zip(counter_values(&out.stats))
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        rows.push(WorkloadCounters {
            name: w.name.to_string(),
            n: w.test_n,
            counters,
        });
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(Baseline {
        version: BASELINE_VERSION,
        strategy: strategy.label().to_string(),
        workloads: rows,
    })
}

/// Collects the same baseline through the native codegen backend: every
/// workload is compiled to Rust, the executor runs it at the test size,
/// and the counters come from the subprocess report. Because the native
/// executor mirrors the machine's RC schedule exactly, this document
/// must be byte-identical to [`collect`]'s — checking it against the
/// committed `BENCH_BASELINE.json` at zero tolerance is the CI proof.
pub fn collect_native() -> Result<Baseline, NativeError> {
    let strategy = Strategy::Perceus;
    let names: Vec<&str> = workloads().iter().map(|w| w.name).collect();
    let harness = NativeHarness::for_workloads(&names, strategy)?;
    let mut rows = Vec::new();
    for w in workloads() {
        let probe = harness.run_native(w.name, w.test_n)?;
        if !probe.ok {
            return Err(NativeError::Unsupported(format!(
                "native run of `{}` failed: {}",
                w.name,
                probe.error_code.as_deref().unwrap_or("unknown error")
            )));
        }
        let counters = COUNTER_KEYS
            .iter()
            .zip(probe.counters)
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        rows.push(WorkloadCounters {
            name: w.name.to_string(),
            n: w.test_n,
            counters,
        });
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(Baseline {
        version: BASELINE_VERSION,
        strategy: strategy.label().to_string(),
        workloads: rows,
    })
}

impl Baseline {
    /// Canonical JSON: sorted workloads, fixed key order, no
    /// whitespace, trailing newline. Byte-reproducible, so a zero
    /// tolerance check is equivalent to a string comparison.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{},\"strategy\":\"{}\",\"workloads\":[",
            self.version, self.strategy
        );
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"n\":{},\"counters\":{{",
                w.name, w.n
            ));
            for (j, (k, v)) in w.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{k}\":{v}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a baseline document (the strict subset of JSON that
    /// [`Baseline::render_json`] emits, whitespace-tolerant).
    pub fn parse_json(src: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            s: src.as_bytes(),
            i: 0,
        };
        let b = p.baseline()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(b)
    }

    /// Compares `current` against this baseline. `tolerance` is a
    /// relative bound: a counter may drift by at most
    /// `tolerance * baseline` (so `0.0` demands exact equality, the CI
    /// default). Returns one human-readable line per violation; empty
    /// means the gate passes.
    pub fn check(&self, current: &Baseline, tolerance: f64) -> Vec<String> {
        let mut bad = Vec::new();
        if current.version != self.version {
            bad.push(format!(
                "baseline version {} != current {}",
                self.version, current.version
            ));
        }
        if current.strategy != self.strategy {
            bad.push(format!(
                "baseline strategy `{}` != current `{}`",
                self.strategy, current.strategy
            ));
        }
        for b in &self.workloads {
            let Some(c) = current.workloads.iter().find(|c| c.name == b.name) else {
                bad.push(format!(
                    "workload `{}` is in the baseline but was not run",
                    b.name
                ));
                continue;
            };
            if c.n != b.n {
                bad.push(format!(
                    "{}: baseline n={} != current n={}",
                    b.name, b.n, c.n
                ));
                continue;
            }
            for (k, bv) in &b.counters {
                let Some((_, cv)) = c.counters.iter().find(|(ck, _)| ck == k) else {
                    bad.push(format!(
                        "{}: counter `{k}` missing from current run",
                        b.name
                    ));
                    continue;
                };
                let drift = (*cv as f64 - *bv as f64).abs();
                let allowed = tolerance * *bv as f64;
                if drift > allowed {
                    bad.push(format!(
                        "{}: {k} = {cv}, baseline {bv} ({}{} vs allowed {:.0})",
                        b.name,
                        if cv >= bv { "+" } else { "-" },
                        cv.abs_diff(*bv),
                        allowed,
                    ));
                }
            }
            for (k, _) in &c.counters {
                if !b.counters.iter().any(|(bk, _)| bk == k) {
                    bad.push(format!(
                        "{}: counter `{k}` not in the baseline (regenerate it)",
                        b.name
                    ));
                }
            }
        }
        for c in &current.workloads {
            if !self.workloads.iter().any(|b| b.name == c.name) {
                bad.push(format!(
                    "workload `{}` is not in the baseline (regenerate it)",
                    c.name
                ));
            }
        }
        bad
    }
}

/// A tiny cursor over the baseline's JSON subset. The document grammar
/// is fixed (objects with known keys, string and integer leaves), so a
/// schema-directed parser stays both strict and dependency-free.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("baseline parse error at byte {}: {msg}", self.i)
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn tok(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    /// Peeks (after whitespace) without consuming.
    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.tok(b'"')?;
        let start = self.i;
        while let Some(&b) = self.s.get(self.i) {
            if b == b'\\' {
                return Err(self.err("escape sequences are not used in baselines"));
            }
            if b == b'"' {
                let out = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| self.err("invalid utf-8"))?
                    .to_string();
                self.i += 1;
                return Ok(out);
            }
            self.i += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn int(&mut self) -> Result<i64, String> {
        self.ws();
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("expected an integer"))
    }

    fn uint(&mut self) -> Result<u64, String> {
        let v = self.int()?;
        u64::try_from(v).map_err(|_| self.err("expected a non-negative integer"))
    }

    fn counters(&mut self) -> Result<Vec<(String, u64)>, String> {
        self.tok(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            let k = self.string()?;
            self.tok(b':')?;
            out.push((k, self.uint()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected `,` or `}` in counters")),
            }
        }
    }

    fn workload(&mut self) -> Result<WorkloadCounters, String> {
        self.tok(b'{')?;
        let (mut name, mut n, mut counters) = (None, None, None);
        loop {
            let key = self.string()?;
            self.tok(b':')?;
            match key.as_str() {
                "name" => name = Some(self.string()?),
                "n" => n = Some(self.int()?),
                "counters" => counters = Some(self.counters()?),
                other => return Err(self.err(&format!("unknown workload key `{other}`"))),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                _ => return Err(self.err("expected `,` or `}` in workload")),
            }
        }
        Ok(WorkloadCounters {
            name: name.ok_or_else(|| self.err("workload without `name`"))?,
            n: n.ok_or_else(|| self.err("workload without `n`"))?,
            counters: counters.ok_or_else(|| self.err("workload without `counters`"))?,
        })
    }

    fn baseline(&mut self) -> Result<Baseline, String> {
        self.tok(b'{')?;
        let (mut version, mut strategy, mut rows) = (None, None, None);
        loop {
            let key = self.string()?;
            self.tok(b':')?;
            match key.as_str() {
                "version" => version = Some(self.uint()?),
                "strategy" => strategy = Some(self.string()?),
                "workloads" => {
                    self.tok(b'[')?;
                    let mut ws = Vec::new();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                    } else {
                        loop {
                            ws.push(self.workload()?);
                            match self.peek() {
                                Some(b',') => self.i += 1,
                                Some(b']') => {
                                    self.i += 1;
                                    break;
                                }
                                _ => return Err(self.err("expected `,` or `]`")),
                            }
                        }
                    }
                    rows = Some(ws);
                }
                other => return Err(self.err(&format!("unknown baseline key `{other}`"))),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                _ => return Err(self.err("expected `,` or `}` in baseline")),
            }
        }
        Ok(Baseline {
            version: version.ok_or_else(|| self.err("missing `version`"))?,
            strategy: strategy.ok_or_else(|| self.err("missing `strategy`"))?,
            workloads: rows.ok_or_else(|| self.err("missing `workloads`"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            version: 1,
            strategy: "perceus".into(),
            workloads: vec![WorkloadCounters {
                name: "rbtree".into(),
                n: 400,
                counters: vec![("dups".into(), 10), ("frees".into(), 3)],
            }],
        }
    }

    #[test]
    fn json_roundtrips_canonically() {
        let b = sample();
        let json = b.render_json();
        let parsed = Baseline::parse_json(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.render_json(), json, "render is canonical");
    }

    #[test]
    fn parse_tolerates_whitespace_but_rejects_junk() {
        let pretty = "{\n  \"version\": 1,\n  \"strategy\": \"perceus\",\n  \
                      \"workloads\": [ ]\n}\n";
        let b = Baseline::parse_json(pretty).unwrap();
        assert_eq!(b.workloads.len(), 0);
        assert!(Baseline::parse_json("{\"version\":1}").is_err());
        assert!(
            Baseline::parse_json("{\"version\":1,\"strategy\":\"p\",\"workloads\":[]}x").is_err()
        );
    }

    #[test]
    fn zero_tolerance_flags_any_drift() {
        let base = sample();
        let mut cur = sample();
        assert!(base.check(&cur, 0.0).is_empty());
        cur.workloads[0].counters[0].1 = 11;
        let bad = base.check(&cur, 0.0);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("dups"), "{bad:?}");
        // 10% relative tolerance absorbs the +1 on a baseline of 10.
        assert!(base.check(&cur, 0.1).is_empty());
    }

    #[test]
    fn missing_and_extra_workloads_are_violations() {
        let base = sample();
        let empty = Baseline {
            workloads: vec![],
            ..sample()
        };
        assert_eq!(base.check(&empty, 0.0).len(), 1);
        assert_eq!(empty.check(&base, 0.0).len(), 1);
    }

    #[test]
    fn collected_counters_are_reproducible() {
        let a = collect().unwrap();
        let b = collect().unwrap();
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.workloads.iter().any(|w| w.name == "rbtree"));
        for w in &a.workloads {
            assert_eq!(w.counters.len(), COUNTER_KEYS.len());
        }
    }
}
