//! The certificate gate behind `perceus-bench --check-certs`.
//!
//! Complements the zero-tolerance counter baseline (`counters`): where
//! `--check-baseline` pins the *exact* measured counters, the cert gate
//! checks that every workload recorded in `BENCH_BASELINE.json` still
//! satisfies its *certified* symbolic bounds
//! ([`perceus_suite::certify`]). Each baseline workload is re-certified
//! from source, every certificate is re-verified with the independent
//! checker, and the workload is replayed under the attributed profiler
//! at its recorded baseline size plus the surrounding size ladder —
//! any measured count exceeding a certified bound is a violation.
//!
//! The baseline document supplies the size parameterization: its
//! per-workload `n` is the anchor the replay ladder is built around,
//! so regenerating the baseline at new sizes re-parameterizes the gate
//! without code changes.

use crate::counters::Baseline;
use perceus_suite::certify::{certify_final, replay_sizes, replay_workload};
use perceus_suite::{workload, Strategy, SuiteError};

/// Re-certifies and replays every workload in `baseline`, returning
/// one human-readable line per violation (empty = gate passes).
pub fn check_certs(baseline: &Baseline) -> Result<Vec<String>, SuiteError> {
    let strategy = Strategy::Perceus;
    let mut violations = Vec::new();
    for bw in &baseline.workloads {
        let Some(w) = workload(&bw.name) else {
            violations.push(format!(
                "{}: baseline workload is not registered in the suite",
                bw.name
            ));
            continue;
        };
        let sc = certify_final(w.source, strategy)?;
        for e in &sc.errors {
            violations.push(format!("{}: checker rejection: {e}", bw.name));
        }
        let mut sizes = replay_sizes(&w);
        if !sizes.contains(&bw.n) {
            sizes.push(bw.n);
        }
        for n in sizes {
            let r = replay_workload(&w, strategy, n, &sc)?;
            for x in &r.exceedances {
                violations.push(format!("{} at n={n}: {x}", bw.name));
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{WorkloadCounters, BASELINE_VERSION};

    #[test]
    fn cert_gate_passes_on_a_two_workload_baseline() {
        // A miniature baseline (the committed file's shape) drives the
        // gate; sizes come from its per-workload `n`.
        let baseline = Baseline {
            version: BASELINE_VERSION,
            strategy: "perceus".to_string(),
            workloads: vec![
                WorkloadCounters {
                    name: "map".to_string(),
                    n: 64,
                    counters: Vec::new(),
                },
                WorkloadCounters {
                    name: "queue".to_string(),
                    n: 48,
                    counters: Vec::new(),
                },
            ],
        };
        let violations = check_certs(&baseline).expect("gate runs");
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unknown_baseline_workload_is_a_violation() {
        let baseline = Baseline {
            version: BASELINE_VERSION,
            strategy: "perceus".to_string(),
            workloads: vec![WorkloadCounters {
                name: "no-such-workload".to_string(),
                n: 1,
                counters: Vec::new(),
            }],
        };
        let violations = check_certs(&baseline).expect("gate runs");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("not registered"));
    }
}
