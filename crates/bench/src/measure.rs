//! Timing and statistics collection for the figure harness.

use perceus_runtime::machine::RunConfig;
use perceus_runtime::Stats;
use perceus_suite::{compile_workload, run_workload, Strategy, SuiteError, Workload};
use std::time::{Duration, Instant};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name.
    pub workload: &'static str,
    /// Strategy measured.
    pub strategy: Strategy,
    /// Problem size.
    pub n: i64,
    /// Best (minimum) wall time over the repetitions. On a shared
    /// machine timing noise is strictly additive, so the minimum is
    /// the least-biased estimate of the true cost.
    pub time: Duration,
    /// All repetition times.
    pub times: Vec<Duration>,
    /// Runtime statistics of the last run.
    pub stats: Stats,
    /// The integer result (sanity: must agree across strategies).
    pub result: i64,
}

impl Measurement {
    /// Best time in seconds.
    pub fn secs(&self) -> f64 {
        self.time.as_secs_f64()
    }
}

/// Compiles and runs `workload` under `strategy`, `repeat` times after
/// one warmup, returning the best time and the final statistics.
pub fn measure(
    workload: &Workload,
    strategy: Strategy,
    n: i64,
    repeat: usize,
) -> Result<Measurement, SuiteError> {
    let compiled = compile_workload(workload.source, strategy)?;
    let mut times = Vec::with_capacity(repeat);
    let mut stats = Stats::default();
    let mut result = 0i64;
    // Warmup (also validates the run).
    let out = run_workload(&compiled, strategy, n, RunConfig::default())?;
    if let perceus_runtime::DeepValue::Int(v) = out.value {
        result = v;
    }
    for _ in 0..repeat {
        let start = Instant::now();
        let out = run_workload(&compiled, strategy, n, RunConfig::default())?;
        times.push(start.elapsed());
        stats = out.stats;
    }
    times.sort();
    let time = times[0];
    Ok(Measurement {
        workload: workload.name,
        strategy,
        n,
        time,
        times,
        stats,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_suite::workload;

    #[test]
    fn measure_produces_consistent_results() {
        let w = workload("map").unwrap();
        let a = measure(&w, Strategy::Perceus, 500, 2).unwrap();
        let b = measure(&w, Strategy::Gc, 500, 2).unwrap();
        assert_eq!(a.result, b.result, "strategies must agree");
        assert_eq!(a.times.len(), 2);
        assert!(a.secs() > 0.0);
    }
}
