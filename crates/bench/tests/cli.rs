//! CLI regression tests for `perceus-bench` argument handling: the
//! `--read-scaling` workload selection (it must honour `--workload` and
//! reject non-shareable workloads cleanly, not fall back to a hardcoded
//! default) and the `--backend` flag's validation.

use std::process::Command;

fn bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_perceus-bench"))
}

/// A workload without a shared-input split is a clean operational
/// failure (exit 1 + a message naming the workload), not a usage error
/// and not a silent fallback to `map`.
#[test]
fn read_scaling_rejects_non_shareable_workload() {
    let out = bench()
        .args(["--read-scaling", "-", "--workload", "rbtree"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rbtree") && stderr.contains("no shared-input split"),
        "stderr: {stderr}"
    );
    assert!(out.stdout.is_empty(), "no partial record on failure");
}

/// An unknown workload name is a usage error (exit 2).
#[test]
fn read_scaling_rejects_unknown_workload() {
    let out = bench()
        .args(["--read-scaling", "-", "--workload", "no-such"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such"), "stderr: {stderr}");
}

/// `--read-scaling` honours `--workload` for any shareable workload:
/// the emitted record names the selected workload, not the default.
#[test]
fn read_scaling_honours_workload_flag() {
    let out = bench()
        .args(["--read-scaling", "-", "--workload", "refs", "--n", "20"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"workload\":\"refs\"") && stdout.contains("\"n\":20"),
        "stdout: {stdout}"
    );
}

/// `--backend` only accepts the two executors.
#[test]
fn backend_flag_is_validated() {
    let out = bench()
        .args(["--backend", "bogus"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
