//! Ablation benchmarks: full Perceus with each optimization of §2
//! individually disabled, on the workloads where the paper says it
//! matters most (rbtree for reuse and specialization, cfold for drop
//! specialization).

use criterion::{criterion_group, criterion_main, Criterion};
use perceus_core::passes::{Ablation, PassConfig};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_with_config, run_workload, workload, Strategy};

fn ablation(c: &mut Criterion) {
    let configs: Vec<(String, PassConfig)> =
        std::iter::once(("full".to_string(), PassConfig::perceus()))
            .chain(
                [
                    Ablation::Reuse,
                    Ablation::ReuseSpec,
                    Ablation::DropSpec,
                    Ablation::Fuse,
                    Ablation::Inline,
                ]
                .into_iter()
                .map(|ab| (format!("without-{ab:?}"), PassConfig::perceus().without(ab))),
            )
            .collect();
    for (name, n) in [("rbtree", 6_000i64), ("cfold", 12)] {
        let w = workload(name).expect("registered");
        let mut group = c.benchmark_group(format!("ablate/{name}"));
        for (label, cfg) in &configs {
            let compiled = compile_with_config(w.source, cfg.clone()).expect("compile");
            group.bench_function(label, |b| {
                b.iter(|| {
                    run_workload(&compiled, Strategy::Perceus, n, RunConfig::default())
                        .expect("run")
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation
}
criterion_main!(benches);
