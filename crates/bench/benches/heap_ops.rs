//! Microbenchmarks of the heap primitives — the per-operation costs
//! that §2 argues dominate reference counting ("the cost of reference
//! counting is linear in the number of reference counting operations").
//! These quantify the fast/slow path split of §2.7.2 and the benefit of
//! building into a reuse token versus a fresh allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use perceus_core::ir::CtorId;
use perceus_runtime::heap::{BlockTag, Heap, HeapConfig, ReclaimMode};
use perceus_runtime::Value;
use std::hint::black_box;

fn heap_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");

    group.bench_function("dup+drop (fast path)", |b| {
        let mut h = Heap::new(ReclaimMode::Rc);
        let a = h.alloc(BlockTag::Ctor(CtorId(2)), Box::new([Value::Int(1)]));
        let v = Value::Ref(a);
        b.iter(|| {
            h.dup(black_box(v)).unwrap();
            h.drop_value(black_box(v)).unwrap();
        });
    });

    group.bench_function("dup+drop (thread-shared slow path)", |b| {
        let mut h = Heap::new(ReclaimMode::Rc);
        let a = h.alloc(BlockTag::Ctor(CtorId(2)), Box::new([Value::Int(1)]));
        h.tshare(Value::Ref(a)).unwrap();
        let v = Value::Ref(a);
        b.iter(|| {
            h.dup(black_box(v)).unwrap();
            h.drop_value(black_box(v)).unwrap();
        });
    });

    group.bench_function("alloc+drop (free-list recycled)", |b| {
        // Default heap: after the first iteration every alloc is a
        // free-list hit — the steady state of a hot allocation loop.
        let mut h = Heap::new(ReclaimMode::Rc);
        b.iter(|| {
            let a = h.alloc_slice(
                BlockTag::Ctor(CtorId(2)),
                &[black_box(Value::Int(1)), Value::Unit],
            );
            h.drop_value(Value::Ref(a)).unwrap();
        });
    });

    group.bench_function("alloc+drop (malloc path, recycling off)", |b| {
        // The seed discipline: every alloc boxes fresh field storage and
        // every free returns it to the global allocator.
        let mut h = Heap::with_config(
            ReclaimMode::Rc,
            HeapConfig {
                recycle: false,
                ..HeapConfig::default()
            },
        );
        b.iter(|| {
            let a = h.alloc_slice(
                BlockTag::Ctor(CtorId(2)),
                &[black_box(Value::Int(1)), Value::Unit],
            );
            h.drop_value(Value::Ref(a)).unwrap();
        });
    });

    group.bench_function("reuse roundtrip (drop-reuse + build-into)", |b| {
        let mut h = Heap::new(ReclaimMode::Rc);
        let mut a = h.alloc(
            BlockTag::Ctor(CtorId(2)),
            Box::new([Value::Int(1), Value::Unit]),
        );
        b.iter(|| {
            let tok = h.drop_reuse(Value::Ref(a)).unwrap();
            let Value::Token(Some(t)) = tok else {
                unreachable!()
            };
            a = h
                .alloc_into(t, CtorId(2), &[black_box(Value::Int(2)), Value::Unit], &[])
                .unwrap();
        });
    });

    group.bench_function("is-unique test", |b| {
        let mut h = Heap::new(ReclaimMode::Rc);
        let a = h.alloc(BlockTag::Ctor(CtorId(2)), Box::new([Value::Int(1)]));
        let v = Value::Ref(a);
        b.iter(|| h.is_unique(black_box(v)).unwrap());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = heap_ops
}
criterion_main!(benches);
