//! Criterion benchmarks for Fig. 9: the five evaluation benchmarks of
//! §4, each under all five memory-management strategies. Problem sizes
//! are reduced relative to the `figures` binary so the statistical
//! sampling stays tractable; the *relative* shape (who wins, by what
//! factor) is what reproduces the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, workload, Strategy};

fn bench_sizes(name: &str) -> i64 {
    match name {
        "rbtree" => 8_000,
        "rbtree-ck" => 4_000,
        "deriv" => 96,
        "nqueens" => 7,
        "cfold" => 12,
        _ => 1_000,
    }
}

fn figure9(c: &mut Criterion) {
    for w in perceus_suite::workloads().iter().filter(|w| w.in_figure9) {
        let mut group = c.benchmark_group(format!("fig9/{}", w.name));
        let n = bench_sizes(w.name);
        for s in Strategy::ALL {
            let compiled = compile_workload(w.source, s).expect("compile");
            group.bench_with_input(BenchmarkId::new(s.label(), n), &n, |b, &n| {
                b.iter(|| run_workload(&compiled, s, n, RunConfig::default()).expect("run"))
            });
        }
        group.finish();
    }
}

fn fbip(c: &mut Criterion) {
    // §2.6: FBIP traversal vs recursive traversal (both under Perceus).
    let mut group = c.benchmark_group("fbip");
    for name in ["tmap", "tmap-rec"] {
        let w = workload(name).expect("registered");
        let compiled = compile_workload(w.source, Strategy::Perceus).expect("compile");
        group.bench_function(name, |b| {
            b.iter(|| {
                run_workload(&compiled, Strategy::Perceus, 20_000, RunConfig::default())
                    .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure9, fbip
}
criterion_main!(benches);
