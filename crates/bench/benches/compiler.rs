//! Compiler-speed benchmarks: the cost of the front end and of each
//! Perceus pass on the largest suite program (rbtree-ck). Not a paper
//! figure, but documents that the insertion algorithm and its
//! optimizations are cheap (near-linear) — a practical claim the paper
//! makes implicitly by shipping them in a production compiler.

use criterion::{criterion_group, criterion_main, Criterion};
use perceus_core::passes::{PassConfig, Pipeline};
use perceus_suite::workload;

fn compiler(c: &mut Criterion) {
    let src = workload("rbtree-ck").expect("registered").source;
    c.bench_function("compile/frontend", |b| {
        b.iter(|| perceus_lang::compile_str(src).expect("compiles"))
    });
    let program = perceus_lang::compile_str(src).expect("compiles");
    for (label, cfg) in [
        ("perceus", PassConfig::perceus()),
        ("no-opt", PassConfig::perceus_no_opt()),
        ("scoped", PassConfig::scoped()),
    ] {
        c.bench_function(format!("compile/passes-{label}"), |b| {
            b.iter(|| {
                Pipeline::new(cfg.clone())
                    .run(program.clone())
                    .expect("passes run")
            })
        });
    }
    // Per-stage breakdown via the staged pipeline API: where the
    // compile time of the full Perceus configuration actually goes.
    // (One-shot timings — the per-pass costs are too small for stable
    // isolation, but the relative split is the interesting number.)
    let trace = Pipeline::new(PassConfig::perceus())
        .stages(program.clone())
        .expect("passes run");
    for (pass, elapsed) in trace.timings() {
        eprintln!("compile/stage-{pass}: {elapsed:.1?}");
    }
    c.bench_function("compile/staged-trace", |b| {
        b.iter(|| {
            Pipeline::new(PassConfig::perceus())
                .stages(program.clone())
                .expect("passes run")
        })
    });
    let compiled = trace.into_final();
    c.bench_function("compile/backend", |b| {
        b.iter(|| perceus_runtime::code::compile(&compiled).expect("backend"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = compiler
}
criterion_main!(benches);
