//! The session worker: one OS thread owning one long-lived [`Heap`],
//! recycled across thousands of tenant sessions — plus, since protocol
//! v2, the shard's *suspension table* of parked resumable sessions.
//!
//! This is the serving payoff of the paper's garbage-freedom theorems
//! (Thm. 2/4). Because a Perceus session frees everything it allocates
//! by the time its result is dropped, a worker does not need a fresh
//! heap per tenant: it runs a session with [`Machine::with_heap`],
//! takes the heap back with [`Machine::into_heap`], and calls
//! [`Heap::reset`] — which retires whatever an *aborted* session left
//! behind (fuel/memory-limited runs die mid-expression with values
//! still rooted in machine frames), bumps the generation of every
//! retired slot so stale addresses from the dead tenant fail
//! deterministically, and feeds the slots back to the size-class free
//! lists. A well-behaved session reclaims zero blocks at reset and its
//! successor allocates straight out of the previous tenants' warm free
//! lists.
//!
//! **Resumable sessions** run on a *private* heap instead of the
//! worker's recycled one: when their per-leg fuel runs out the machine
//! suspends at an auditable point (Theorem 4's side condition — never
//! mid reference-count operation), and the worker parks the
//! lifetime-erased [`Checkpoint`] together with its heap in the shard's
//! bounded park table. Garbage-freedom is what makes the table's
//! admission accounting honest: a parked heap's `live_words` is
//! *exactly* the session's reachable data, with no slack for floating
//! garbage, so the memory budget it is charged against means what it
//! says. When parking would exceed the table's capacity or word budget
//! the oldest session is evicted — a real abort whose heap is reset
//! (repaying its words) and whose next `resume` gets a deterministic
//! `no-such-session` rejection.
//!
//! After every reset the worker audits its heap with
//! [`audit::check_heap`]: the per-session garbage-free check that makes
//! "zero leaks across N tenants" an asserted property instead of a
//! hope. At every *suspension* the same audit runs against the parked
//! continuation's roots — the suspension-point invariant of the
//! checkpoint/resume API. Session statistics and (optional) attributed
//! profiles fold into the server-wide aggregate with the associative
//! [`Stats::merge`] / [`Profiler::merge`], so the totals are
//! independent of completion order under churn.

use crate::cache::{CachedProgram, ProgramCache, SharedInput, SharedInputs};
use crate::json::ObjBuilder;
use crate::protocol::{self, Outcome, ResumeRequest, RunRequest};
use perceus_bench::counters::counter_values;
use perceus_bench::COUNTER_KEYS;
use perceus_runtime::audit;
use perceus_runtime::machine::{Machine, RunConfig};
use perceus_runtime::{
    Checkpoint, Execution, Heap, Profiler, ReclaimMode, RuntimeError, SharedHeap, Stats,
    StepOutcome, Value,
};
use perceus_suite::{ParallelSpec, Strategy};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A `run` session admitted to a worker queue: the parsed request plus
/// the owning connection's writer channel.
pub struct RunJob {
    pub req: RunRequest,
    pub reply: Sender<String>,
}

/// A `resume` op routed to the shard that parked the session.
pub struct ResumeJob {
    pub req: ResumeRequest,
    pub reply: Sender<String>,
}

/// Anything a worker shard can be asked to do.
pub enum Job {
    Run(RunJob),
    Resume(ResumeJob),
}

impl Job {
    /// The client correlation id (for drain-time rejections).
    fn id(&self) -> u64 {
        match self {
            Job::Run(j) => j.req.id,
            Job::Resume(j) => j.req.id,
        }
    }

    fn reply(&self) -> &Sender<String> {
        match self {
            Job::Run(j) => &j.reply,
            Job::Resume(j) => &j.reply,
        }
    }
}

/// Server-wide totals, folded under one lock at session completion.
#[derive(Default)]
pub struct Aggregate {
    /// Sessions that ran to some terminal state on a worker (evicted
    /// parked sessions included — eviction is their terminal state).
    pub sessions: u64,
    pub ok: u64,
    pub fuel_exhausted: u64,
    pub memory_limit: u64,
    pub compile_errors: u64,
    pub failed: u64,
    /// Legs answered `suspended` with a session token (one session can
    /// contribute many).
    pub suspended: u64,
    /// `resume` ops that found their parked session and ran a leg.
    pub resumes: u64,
    /// Parked sessions aborted by park-table pressure or shutdown;
    /// their next `resume` gets `no-such-session`.
    pub evicted: u64,
    /// Blocks still live after an *ok* session dropped its result —
    /// genuine leaks; the serve-smoke gate requires this to stay zero.
    pub leaked_blocks: u64,
    /// Blocks [`Heap::reset`] retired after aborted sessions (expected
    /// to be nonzero exactly when sessions hit fuel/memory limits or a
    /// parked session is evicted mid-flight).
    pub reclaimed_blocks: u64,
    /// Post-reset [`audit::check_heap`] failures, plus suspension-point
    /// audit failures (must stay zero).
    pub audit_failures: u64,
    /// Shared-segment references that aborted shared sessions failed
    /// to return (the one-way drift documented in `docs/SERVING.md`):
    /// a session killed by a fuel/memory limit may die with shared
    /// references still rooted in dead machine frames. [`Heap::reset`]
    /// repays the references held by local block *fields*; the
    /// frame-held residue only pins shared blocks (counts inflate, so
    /// they are never freed early) and is bounded by the segment,
    /// whose storage is released wholesale when the cache entry drops.
    /// Must stay zero for every *ok* session.
    pub shared_ref_drift: u64,
    /// All session heap statistics, merged associatively.
    pub stats: Stats,
    /// Merged attributed profile of every `profile:true` session.
    pub profile: Option<Profiler>,
}

/// State shared by every worker, connection, and the control plane.
pub struct ServeCtx {
    pub programs: ProgramCache,
    pub inputs: SharedInputs,
    pub aggregate: Mutex<Aggregate>,
    /// Fuel (steps) granted when the request doesn't ask. For resumable
    /// sessions this is the per-*leg* budget.
    pub default_fuel: u64,
    /// Hard fuel ceiling: per-session for plain runs, per-leg *and*
    /// cumulative for resumable sessions (a resumable session that has
    /// burned this many steps across all its legs dies with
    /// `fuel-exhausted` instead of suspending again).
    pub max_fuel: u64,
    /// Live-word budget granted when the request doesn't ask.
    pub default_memory: u64,
    /// Hard per-session live-word ceiling (requests are clamped).
    pub max_memory: u64,
    /// Per-shard cap on parked sessions; parking past it evicts the
    /// shard's oldest.
    pub park_capacity: u64,
    /// Per-shard cap on the summed `live_words` of parked sessions —
    /// the admission-control memory charge for suspended tenants.
    pub park_memory_words: u64,
    /// Sessions admitted but not yet answered (admission control).
    pub inflight: AtomicU64,
    /// Sessions turned away by admission control.
    pub rejected: AtomicU64,
    /// Currently parked sessions, across all shards (gauge).
    pub parked: AtomicU64,
    /// Summed live words of currently parked sessions (gauge).
    pub parked_words: AtomicU64,
}

/// The worker loop: pull a job, run the session (or a resumed leg) on
/// the right heap, answer, repeat. Exits when the shutdown flag rises
/// or the queue's senders are gone. `shard` is this worker's index —
/// the high bits of every session token it mints, which is how the
/// dispatcher routes `resume` ops back here.
pub fn worker_loop(
    shard: usize,
    jobs: Receiver<Job>,
    ctx: Arc<ServeCtx>,
    shutdown: Arc<AtomicBool>,
) {
    // Workers serve only garbage-free (rc) strategies, so one Rc-mode
    // heap works for every tenant regardless of which rc strategy
    // compiled its program.
    let mut heap = Heap::new(ReclaimMode::Rc);
    let mut parked = ParkTable::new(shard as u64);
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(Job::Run(job)) if !job.req.resumable => {
                let (returned, response) = run_session(heap, &ctx, &job.req);
                heap = returned;
                // A dead connection just discards the response.
                let _ = job.reply.send(response);
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Ok(Job::Run(job)) => {
                let response = run_resumable(&mut parked, &ctx, &job.req);
                let _ = job.reply.send(response);
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Ok(Job::Resume(job)) => {
                let response = resume_session(&mut parked, &ctx, &job.req);
                let _ = job.reply.send(response);
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                parked.evict_all(&ctx);
                return;
            }
        }
    }
    // Shutdown: every parked session is evicted (a real abort with the
    // usual reset + audit accounting) — a daemon going away must not
    // strand continuations that can never be resumed.
    parked.evict_all(&ctx);
    // ... and jobs possibly still queued (or racing in from connections
    // that haven't seen the flag yet) must still be answered and the
    // inflight gauge returned to zero, or their clients hang until EOF.
    // Keep receiving until the last sender is gone — connection threads
    // exit on the same flag, so disconnection is guaranteed.
    loop {
        match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let _ = job.reply().send(crate::protocol::error_response(
                    job.id(),
                    Outcome::Rejected,
                    "shutdown",
                    "server shutting down",
                ));
                ctx.rejected.fetch_add(1, Ordering::Relaxed);
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Everything a response (terminal or suspended) needs to describe its
/// session, threaded through legs and park/resume cycles.
#[derive(Clone)]
struct SessionMeta {
    id: u64,
    name: String,
    strategy: Strategy,
    n: i64,
    cached: bool,
    shared: bool,
    /// Whether the session read the shared input through the borrowed
    /// (snapshot) path — zero RMWs, no per-session reference.
    borrow: bool,
    /// Whether this session went through the resumable path (its
    /// responses then carry a `resumes` count).
    resumable: bool,
    /// Completed `resume` legs so far.
    resumes: u64,
    /// The fuel figure quoted in a `fuel-exhausted` error: the request
    /// budget for plain runs, the cumulative server ceiling for
    /// resumable ones.
    fuel_limit: u64,
    /// The clamped live-word budget (quoted in `memory-limit` errors
    /// and re-applied on every resumed leg).
    memory: u64,
    profile: bool,
    /// Start of the current leg (responses report per-leg latency).
    start: Instant,
}

/// The admission gate for `borrow` (snapshot-read) sessions: every
/// combination rejected here can *never* be served, so the answer is a
/// terminal structured `rejected` (not `busy`), before any compilation
/// happens. Returns `None` when the request is servable.
fn reject_borrow(ctx: &ServeCtx, req: &RunRequest) -> Option<String> {
    if !req.borrow {
        return None;
    }
    let (code, msg) = if !req.shared {
        (
            "borrow-without-shared",
            "\"borrow\":true requires \"shared\":true — snapshot reads borrow the frozen shared input".to_string(),
        )
    } else if req.strategy != Strategy::Perceus {
        (
            "borrow-unsupported",
            format!(
                "strategy {:?} has no borrow-inference variant; snapshot reads require \"perceus\"",
                req.strategy.label()
            ),
        )
    } else if req.resumable {
        (
            "borrow-not-resumable",
            "a borrowed session cannot suspend: its epoch pin would stall shared-segment \
             reclamation for as long as it stayed parked"
                .to_string(),
        )
    } else {
        return None;
    };
    finish_failed(ctx, Outcome::Rejected);
    Some(run_error(req.id, Outcome::Rejected, code, &msg))
}

/// Runs one session on the worker's heap and returns the heap (reset,
/// ready for the next tenant) and the response line.
pub fn run_session(heap: Heap, ctx: &ServeCtx, req: &RunRequest) -> (Heap, String) {
    let start = Instant::now();
    if let Some(resp) = reject_borrow(ctx, req) {
        return (heap, resp);
    }
    let (prog, cached) = match ctx.programs.resolve(req) {
        Ok(p) => p,
        Err(e) => {
            finish_failed(ctx, Outcome::CompileError);
            return (
                heap,
                run_error(
                    req.id,
                    Outcome::CompileError,
                    "compile-error",
                    &e.to_string(),
                ),
            );
        }
    };
    if !prog.strategy.is_rc() {
        // Per-session audits and heap recycling both lean on
        // garbage-freedom; a deferred-reclamation tenant would leave
        // floating garbage the reset would misreport as a leak.
        finish_failed(ctx, Outcome::Rejected);
        let msg = format!(
            "strategy {:?} is not garbage-free; serve accepts rc strategies only",
            prog.strategy.label()
        );
        return (
            heap,
            run_error(req.id, Outcome::Rejected, "not-garbage-free", &msg),
        );
    }
    let n = req.n.unwrap_or(prog.default_n);
    let fuel = req.fuel.unwrap_or(ctx.default_fuel).min(ctx.max_fuel);
    let memory = req.memory.unwrap_or(ctx.default_memory).min(ctx.max_memory);
    let config = RunConfig::new()
        .with_step_limit(Some(fuel))
        .with_memory_limit_words(Some(memory))
        .with_profile(req.profile);

    let shared = if req.shared {
        let Some(spec) = prog.spec else {
            finish_failed(ctx, Outcome::Rejected);
            let msg = format!("workload `{}` declares no shared input", prog.name);
            return (
                heap,
                run_error(req.id, Outcome::Rejected, "no-shared-input", &msg),
            );
        };
        match shared_input(ctx, &prog, spec, n) {
            Ok(input) => Some((input, spec)),
            Err(e) => {
                finish_failed(ctx, Outcome::Failed);
                return (heap, run_error(req.id, Outcome::Failed, "internal", &e));
            }
        }
    } else {
        None
    };

    // A borrowed session needs the consume function's first parameter
    // actually borrow-inferred — a workload whose traversal consumes
    // its argument can never serve snapshot reads, which is a terminal
    // rejection, not a runtime failure.
    if req.borrow {
        if let Some((_, spec)) = &shared {
            let borrowed = prog
                .compiled
                .find_fun(spec.consume)
                .is_some_and(|f| prog.compiled.param_borrowed(f, 0));
            if !borrowed {
                finish_failed(ctx, Outcome::Rejected);
                let msg = format!(
                    "borrow inference did not borrow `{}`'s first parameter; \
                     workload `{}` cannot serve snapshot reads",
                    spec.consume, prog.name
                );
                return (
                    heap,
                    run_error(req.id, Outcome::Rejected, "not-borrowable", &msg),
                );
            }
        }
    }

    let meta = SessionMeta {
        id: req.id,
        name: prog.name.clone(),
        strategy: prog.strategy,
        n,
        cached,
        shared: shared.is_some(),
        borrow: req.borrow,
        resumable: false,
        resumes: 0,
        fuel_limit: fuel,
        memory,
        profile: req.profile,
        start,
    };
    let mut m = Machine::with_heap(&prog.compiled, heap, config);
    let run = match &shared {
        Some((input, spec)) => {
            m.heap.attach_shared(Arc::clone(&input.seg));
            let f = prog.compiled.find_fun(spec.consume).ok_or_else(|| {
                RuntimeError::Internal(format!("no consume function `{}`", spec.consume))
            });
            f.and_then(|f| {
                if req.borrow {
                    // Snapshot path: the session never mints a
                    // reference. The cache's own reference plus the
                    // heap's epoch pin keep the input alive, and the
                    // borrowed calling convention never consumes the
                    // root — zero atomic RMWs end to end.
                    m.run_fun(f, (spec.consume_args)(input.root, n))
                } else {
                    // Mint this session's own reference with a real
                    // atomic RMW (the cache holds the builder's
                    // reference, so the count stays ≥ 1 between
                    // sessions); the consume call's owned calling
                    // convention spends it.
                    m.heap.dup(input.root)?;
                    m.run_fun(f, (spec.consume_args)(input.root, n))
                }
            })
        }
        None => m.run_entry(vec![Value::Int(n)]),
    };
    conclude(m, ctx, &meta, run)
}

/// Runs the first leg of a resumable session. Unlike the recycled-heap
/// path, the session gets a *private* fresh heap: if it suspends, that
/// heap is parked with the continuation, and the worker's own heap
/// never holds a tenant's live data across jobs.
fn run_resumable(parked: &mut ParkTable, ctx: &ServeCtx, req: &RunRequest) -> String {
    let start = Instant::now();
    if let Some(resp) = reject_borrow(ctx, req) {
        return resp;
    }
    let (prog, cached) = match ctx.programs.resolve(req) {
        Ok(p) => p,
        Err(e) => {
            finish_failed(ctx, Outcome::CompileError);
            return run_error(
                req.id,
                Outcome::CompileError,
                "compile-error",
                &e.to_string(),
            );
        }
    };
    if !prog.strategy.is_rc() {
        // Resumability leans even harder on garbage-freedom: the parked
        // heap's live words are charged against the park budget as the
        // session's exact footprint (Thm. 2/4 — no floating garbage at
        // the suspension point).
        finish_failed(ctx, Outcome::Rejected);
        let msg = format!(
            "strategy {:?} is not garbage-free; resumable sessions require an rc strategy",
            prog.strategy.label()
        );
        return run_error(req.id, Outcome::Rejected, "not-garbage-free", &msg);
    }
    let n = req.n.unwrap_or(prog.default_n);
    let budget = req.fuel.unwrap_or(ctx.default_fuel).min(ctx.max_fuel);
    let memory = req.memory.unwrap_or(ctx.default_memory).min(ctx.max_memory);
    // The *machine* limit is the cumulative ceiling; the per-leg budget
    // below is what makes the session suspend instead of die.
    let config = RunConfig::new()
        .with_step_limit(Some(ctx.max_fuel))
        .with_memory_limit_words(Some(memory))
        .with_profile(req.profile);

    let shared = if req.shared {
        let Some(spec) = prog.spec else {
            finish_failed(ctx, Outcome::Rejected);
            let msg = format!("workload `{}` declares no shared input", prog.name);
            return run_error(req.id, Outcome::Rejected, "no-shared-input", &msg);
        };
        match shared_input(ctx, &prog, spec, n) {
            Ok(input) => Some((input, spec)),
            Err(e) => {
                finish_failed(ctx, Outcome::Failed);
                return run_error(req.id, Outcome::Failed, "internal", &e);
            }
        }
    } else {
        None
    };

    let meta = SessionMeta {
        id: req.id,
        name: prog.name.clone(),
        strategy: prog.strategy,
        n,
        cached,
        shared: shared.is_some(),
        borrow: false, // borrow + resumable is rejected above
        resumable: true,
        resumes: 0,
        fuel_limit: ctx.max_fuel,
        memory,
        profile: req.profile,
        start,
    };
    let mut m = Machine::with_heap(&prog.compiled, Heap::new(ReclaimMode::Rc), config);
    let started = match &shared {
        Some((input, spec)) => {
            m.heap.attach_shared(Arc::clone(&input.seg));
            m.heap.dup(input.root).and_then(|()| {
                let f = prog.compiled.find_fun(spec.consume).ok_or_else(|| {
                    RuntimeError::Internal(format!("no consume function `{}`", spec.consume))
                })?;
                m.start(f, (spec.consume_args)(input.root, n))
            })
        }
        None => m.start_entry(vec![Value::Int(n)]),
    };
    let exec = match started {
        Ok(e) => e,
        Err(e) => return conclude(m, ctx, &meta, Err(e)).1,
    };
    advance(parked, ctx, m, exec, &prog, meta, budget)
}

/// Resumes a parked session for one more leg.
fn resume_session(parked: &mut ParkTable, ctx: &ServeCtx, req: &ResumeRequest) -> String {
    let Some(s) = parked.take(req.session, ctx) else {
        return run_error(
            req.id,
            Outcome::Rejected,
            "no-such-session",
            &format!(
                "no parked session {} on this shard (completed, evicted, or never created)",
                req.session
            ),
        );
    };
    let budget = req.fuel.unwrap_or(ctx.default_fuel).min(ctx.max_fuel);
    let ParkedSession {
        checkpoint,
        heap,
        prog,
        mut meta,
        ..
    } = s;
    meta.id = req.id;
    meta.resumes += 1;
    meta.start = Instant::now();
    crate::relock(&ctx.aggregate).resumes += 1;
    // The heap already carries the session's profiler (if any), trace,
    // and cumulative [`Stats`]; the config re-applies the session's
    // limits ([`Machine::with_heap`] only *enables* profiling when the
    // heap has none, so a parked profile is never clobbered).
    let config = RunConfig::new()
        .with_step_limit(Some(ctx.max_fuel))
        .with_memory_limit_words(Some(meta.memory))
        .with_profile(meta.profile);
    let m = Machine::with_heap(&prog.compiled, heap, config);
    // SAFETY: `prog` is the very `Arc<CachedProgram>` instance this
    // checkpoint was parked with (moved out of the park-table entry),
    // so the compiled program is alive and unmutated; the uid check
    // inside `resume` turns any table mixup into a deterministic error.
    let exec = match unsafe { checkpoint.resume(&prog.compiled) } {
        Ok(e) => e,
        Err(e) => return conclude(m, ctx, &meta, Err(e)).1,
    };
    advance(parked, ctx, m, exec, &prog, meta, budget)
}

/// Drives one leg of a resumable execution: to completion (or death),
/// or to the next suspension — in which case the session is parked and
/// the client gets its token.
fn advance<'p>(
    parked: &mut ParkTable,
    ctx: &ServeCtx,
    mut m: Machine<'p>,
    mut exec: Execution<'p>,
    prog: &Arc<CachedProgram>,
    meta: SessionMeta,
    budget: u64,
) -> String {
    match exec.run(&mut m, Some(budget.max(1))) {
        Ok(StepOutcome::Done(v)) => conclude(m, ctx, &meta, Ok(v)).1,
        Err(e) => conclude(m, ctx, &meta, Err(e)).1,
        Ok(StepOutcome::Suspended {
            steps_used,
            live_words,
        }) => {
            // The suspension-point invariant: the parked continuation's
            // roots account for *every* live block (garbage-freedom at
            // the suspension point), checked here on the live heap
            // before the session is parked.
            let roots = exec.root_addrs(&m.heap);
            let audit_ok = audit::check_heap(&m.heap, &roots).is_ok();
            let checkpoint = match exec.into_checkpoint() {
                Ok(c) => c,
                Err(e) => return conclude(m, ctx, &meta, Err(e)).1,
            };
            let heap = m.into_heap();
            let token = parked.park(
                ParkedSession {
                    token: 0, // minted by `park`
                    checkpoint,
                    heap,
                    prog: Arc::clone(prog),
                    meta: meta.clone(),
                    live_words,
                },
                ctx,
            );
            {
                let mut agg = crate::relock(&ctx.aggregate);
                agg.suspended += 1;
                if !audit_ok {
                    agg.audit_failures += 1;
                }
            }
            protocol::response()
                .u64("id", meta.id)
                .bool("ok", false)
                .str("outcome", Outcome::Suspended.label())
                .u64("session", token)
                .str("program", &meta.name)
                .str("strategy", meta.strategy.label())
                .i64("n", meta.n)
                .bool("cached", meta.cached)
                .bool("shared", meta.shared)
                .u64("steps_used", steps_used)
                .u64("live_words", live_words)
                .u64("resumes", meta.resumes)
                .bool("audit_ok", audit_ok)
                .u64("micros", meta.start.elapsed().as_micros() as u64)
                .finish()
        }
    }
}

/// The shared tail of every terminal session outcome, recycled-heap or
/// resumable: fold the result, reset the heap, audit, book the
/// aggregate, render the response. Returns the reset heap (the
/// recycled-heap path reuses it; the resumable path drops it).
fn conclude(
    mut m: Machine<'_>,
    ctx: &ServeCtx,
    meta: &SessionMeta,
    run: Result<Value, RuntimeError>,
) -> (Heap, String) {
    let (outcome, value, error, code) = match run {
        Ok(v) => match m.read_back(v).and_then(|dv| {
            m.drop_result(v)?;
            Ok(dv)
        }) {
            Ok(dv) => (Outcome::Ok, Some(dv.to_string()), None, None),
            Err(e) => (Outcome::Failed, None, Some(e.to_string()), Some(e.code())),
        },
        Err(e @ RuntimeError::StepLimit(_)) => (
            Outcome::FuelExhausted,
            None,
            Some(format!(
                "fuel budget of {} steps exhausted",
                meta.fuel_limit
            )),
            Some(e.code()),
        ),
        Err(e @ RuntimeError::MemoryLimit { .. }) => {
            let live = match &e {
                RuntimeError::MemoryLimit { live_words, .. } => *live_words,
                _ => unreachable!(),
            };
            (
                Outcome::MemoryLimit,
                None,
                Some(format!(
                    "memory budget of {} words exceeded ({live} live)",
                    meta.memory
                )),
                Some(e.code()),
            )
        }
        Err(e) => (Outcome::Failed, None, Some(e.to_string()), Some(e.code())),
    };

    let output = m.output().to_vec();
    let mut heap = m.into_heap();
    let stats = heap.stats;
    let profile = heap.take_profile();
    let leaked = heap.live_blocks();
    let reclaimed = heap.reset();
    // References the session minted into the shared segment but never
    // spent (nonzero only for shared sessions aborted by a limit; the
    // reset already repaid the block-field-held part).
    let shared_drift = heap.take_shared_drift();
    let audit_ok = audit::check_heap(&heap, &[]).is_ok();

    {
        let mut agg = crate::relock(&ctx.aggregate);
        agg.sessions += 1;
        match outcome {
            Outcome::Ok => agg.ok += 1,
            Outcome::FuelExhausted => agg.fuel_exhausted += 1,
            Outcome::MemoryLimit => agg.memory_limit += 1,
            Outcome::CompileError => agg.compile_errors += 1,
            Outcome::Failed | Outcome::Rejected | Outcome::Busy | Outcome::Suspended => {
                agg.failed += 1
            }
        }
        if outcome == Outcome::Ok {
            agg.leaked_blocks += leaked;
        }
        agg.reclaimed_blocks += reclaimed;
        agg.shared_ref_drift += shared_drift;
        if !audit_ok {
            agg.audit_failures += 1;
        }
        agg.stats = agg.stats.merge(&stats);
        agg.profile = match (agg.profile.take(), profile) {
            (Some(a), Some(b)) => Some(a.merge(&b)),
            (a, b) => a.or(b),
        };
    }

    let mut b = protocol::response()
        .u64("id", meta.id)
        .bool("ok", outcome == Outcome::Ok)
        .str("outcome", outcome.label())
        .str("program", &meta.name)
        .str("strategy", meta.strategy.label())
        .i64("n", meta.n)
        .bool("cached", meta.cached)
        .bool("shared", meta.shared)
        .bool("borrow", meta.borrow)
        .u64("micros", meta.start.elapsed().as_micros() as u64)
        .u64("leaked_blocks", leaked)
        .u64("reclaimed_blocks", reclaimed)
        .u64("shared_ref_drift", shared_drift)
        // Not part of the gated `counters` (the baseline is
        // single-threaded); reported separately so borrowed sessions
        // can prove their zero-RMW read path on the wire.
        .u64("atomic_ops", stats.atomic_ops)
        .bool("audit_ok", audit_ok)
        .raw("counters", &render_counters(&stats));
    if meta.resumable {
        b = b.u64("resumes", meta.resumes);
    }
    if let Some(v) = &value {
        b = b.str("value", v);
    }
    if let Some(c) = code {
        b = b.str("code", c);
    }
    if let Some(e) = &error {
        b = b.str("error", e);
    }
    if !output.is_empty() {
        let mut arr = String::from("[");
        for (i, v) in output.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let _ = write!(arr, "{v}");
        }
        arr.push(']');
        b = b.raw("output", &arr);
    }
    (heap, b.finish())
}

/// A suspended session in a shard's park table: the lifetime-erased
/// continuation, its private heap (cumulative stats, profiler, shared
/// attachment and all), and the `Arc` that keeps the compiled program
/// alive — the liveness guarantee [`Checkpoint::resume`]'s safety
/// contract demands.
struct ParkedSession {
    token: u64,
    checkpoint: Checkpoint,
    heap: Heap,
    prog: Arc<CachedProgram>,
    meta: SessionMeta,
    /// Live heap words at suspension — the words this session charges
    /// against [`ServeCtx::park_memory_words`].
    live_words: u64,
}

/// A shard's bounded suspension table. Oldest-first eviction: parking
/// past the capacity or word budget aborts the longest-parked session
/// (its heap is reset — repaying its words — and its next resume gets
/// `no-such-session`).
struct ParkTable {
    shard: u64,
    seq: u64,
    /// Park order (oldest first). The population is bounded and small,
    /// so linear token lookup beats a map's bookkeeping.
    entries: Vec<ParkedSession>,
    /// Summed `live_words` of `entries`.
    words: u64,
}

impl ParkTable {
    fn new(shard: u64) -> Self {
        ParkTable {
            shard,
            seq: 0,
            entries: Vec::new(),
            words: 0,
        }
    }

    /// Parks a session, minting its token (`shard << 48 | seq` — the
    /// dispatcher routes resumes by the high bits), then evicts oldest
    /// sessions while the table exceeds its caps. A session too large
    /// for the budget can thus be evicted immediately after parking;
    /// its client still holds a valid protocol exchange (`suspended`
    /// then `no-such-session`), which is the documented eviction
    /// surface.
    fn park(&mut self, mut s: ParkedSession, ctx: &ServeCtx) -> u64 {
        self.seq += 1;
        let token = (self.shard << 48) | self.seq;
        s.token = token;
        self.words += s.live_words;
        ctx.parked.fetch_add(1, Ordering::Relaxed);
        ctx.parked_words.fetch_add(s.live_words, Ordering::Relaxed);
        self.entries.push(s);
        while self.entries.len() as u64 > ctx.park_capacity.max(1)
            || self.words > ctx.park_memory_words
        {
            if self.entries.is_empty() {
                break;
            }
            let victim = self.entries.remove(0);
            self.evict(victim, ctx);
        }
        token
    }

    /// Removes and returns the parked session with this token.
    fn take(&mut self, token: u64, ctx: &ServeCtx) -> Option<ParkedSession> {
        let i = self.entries.iter().position(|e| e.token == token)?;
        let s = self.entries.remove(i);
        self.words -= s.live_words;
        ctx.parked.fetch_sub(1, Ordering::Relaxed);
        ctx.parked_words.fetch_sub(s.live_words, Ordering::Relaxed);
        Some(s)
    }

    /// Aborts a parked session: drop the continuation, reset its heap
    /// (repaying every live word), audit, and book it as a terminal
    /// `evicted` session in the aggregate.
    fn evict(&mut self, s: ParkedSession, ctx: &ServeCtx) {
        self.words -= s.live_words;
        ctx.parked.fetch_sub(1, Ordering::Relaxed);
        ctx.parked_words.fetch_sub(s.live_words, Ordering::Relaxed);
        let ParkedSession {
            checkpoint,
            mut heap,
            ..
        } = s;
        // The continuation's frames only *name* heap blocks; the heap
        // owns them, so dropping the checkpoint leaks nothing and the
        // reset retires the whole live set.
        drop(checkpoint);
        let stats = heap.stats;
        heap.prof_exit(); // balance the entry frame the session never exited
        let profile = heap.take_profile();
        let reclaimed = heap.reset();
        let shared_drift = heap.take_shared_drift();
        let audit_ok = audit::check_heap(&heap, &[]).is_ok();
        let mut agg = crate::relock(&ctx.aggregate);
        agg.sessions += 1;
        agg.evicted += 1;
        agg.reclaimed_blocks += reclaimed;
        agg.shared_ref_drift += shared_drift;
        if !audit_ok {
            agg.audit_failures += 1;
        }
        agg.stats = agg.stats.merge(&stats);
        agg.profile = match (agg.profile.take(), profile) {
            (Some(a), Some(b)) => Some(a.merge(&b)),
            (a, b) => a.or(b),
        };
    }

    /// Evicts everything (shutdown drain).
    fn evict_all(&mut self, ctx: &ServeCtx) {
        while !self.entries.is_empty() {
            let victim = self.entries.remove(0);
            self.evict(victim, ctx);
        }
    }
}

/// All 18 gated counters of one session, as a JSON object fragment in
/// [`COUNTER_KEYS`] order (the loadtest drift check reads these).
fn render_counters(stats: &Stats) -> String {
    let mut b = ObjBuilder::new();
    for (key, value) in COUNTER_KEYS.iter().zip(counter_values(stats)) {
        b = b.u64(key, value);
    }
    b.finish()
}

/// Looks up the frozen shared input for `(program, n)`, building and
/// freezing it on first use. Racing builders are benign: the loser's
/// segment is dropped and both sessions use the cached winner.
fn shared_input(
    ctx: &ServeCtx,
    prog: &crate::cache::CachedProgram,
    spec: ParallelSpec,
    n: i64,
) -> Result<Arc<SharedInput>, String> {
    if let Some(input) = ctx.inputs.get(prog.input_key, n) {
        return Ok(input);
    }
    let build = prog
        .compiled
        .find_fun(spec.build)
        .ok_or_else(|| format!("no build function `{}`", spec.build))?;
    // Build on a throwaway machine, not the worker heap: after the
    // share barrier the builder heap must be empty anyway, and a build
    // failure must not contaminate the tenant heap.
    let mut builder = Machine::new(
        &prog.compiled,
        prog.strategy.reclaim_mode(),
        RunConfig::default(),
    );
    let v = builder
        .run_fun(build, (spec.build_args)(n))
        .map_err(|e| format!("shared-input build failed: {e}"))?;
    let mut seg = SharedHeap::new();
    let root = builder
        .heap
        .mark_shared(v, &mut seg)
        .map_err(|e| format!("share barrier failed: {e}"))?;
    if builder.heap.live_blocks() != 0 {
        return Err(format!(
            "builder heap retains {} blocks after the share barrier",
            builder.heap.live_blocks()
        ));
    }
    {
        let mut agg = crate::relock(&ctx.aggregate);
        agg.stats = agg.stats.merge(&builder.heap.stats);
    }
    let live_baseline = seg.live_blocks();
    Ok(ctx.inputs.insert(
        prog.input_key,
        n,
        SharedInput {
            seg: Arc::new(seg),
            root,
            live_baseline,
        },
    ))
}

/// Books a session that never reached the machine.
fn finish_failed(ctx: &ServeCtx, outcome: Outcome) {
    let mut agg = crate::relock(&ctx.aggregate);
    agg.sessions += 1;
    match outcome {
        Outcome::CompileError => agg.compile_errors += 1,
        _ => agg.failed += 1,
    }
}

/// An error response for a session that produced no counters.
fn run_error(id: u64, outcome: Outcome, code: &str, msg: &str) -> String {
    crate::protocol::error_response(id, outcome, code, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use perceus_suite::Strategy;

    fn ctx() -> ServeCtx {
        ServeCtx {
            programs: ProgramCache::new(64),
            inputs: SharedInputs::default(),
            aggregate: Mutex::new(Aggregate::default()),
            default_fuel: 10_000_000,
            max_fuel: 100_000_000,
            default_memory: 1 << 20,
            max_memory: 64 << 20,
            park_capacity: 64,
            park_memory_words: 32 << 20,
            inflight: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            parked_words: AtomicU64::new(0),
        }
    }

    fn req(workload: &str) -> RunRequest {
        RunRequest {
            id: 1,
            workload: Some(workload.into()),
            source: None,
            n: None,
            strategy: Strategy::Perceus,
            fuel: None,
            memory: None,
            shared: false,
            borrow: false,
            profile: false,
            resumable: false,
        }
    }

    /// Drives a suspended session to a terminal response with repeated
    /// `resume` ops, returning (terminal response, legs run).
    fn resume_to_end(
        table: &mut ParkTable,
        ctx: &ServeCtx,
        first: &str,
        fuel: Option<u64>,
    ) -> (String, u64) {
        let mut resp = json::parse(first).unwrap();
        let mut raw = first.to_string();
        for legs in 0..10_000 {
            if resp.get("outcome").and_then(Json::as_str) != Some("suspended") {
                return (raw, legs);
            }
            let session = resp.get("session").and_then(Json::as_u64).unwrap();
            raw = resume_session(
                table,
                ctx,
                &ResumeRequest {
                    id: 1,
                    session,
                    fuel,
                },
            );
            resp = json::parse(&raw).unwrap();
        }
        panic!("session never terminated: {raw}");
    }

    #[test]
    fn ok_session_leaves_heap_clean() {
        let ctx = ctx();
        let (heap, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &req("map"));
        assert!(resp.contains("\"outcome\":\"ok\""), "{resp}");
        assert!(resp.contains("\"leaked_blocks\":0"), "{resp}");
        assert!(resp.contains("\"reclaimed_blocks\":0"), "{resp}");
        assert_eq!(heap.live_blocks(), 0);
        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!((agg.sessions, agg.ok, agg.leaked_blocks), (1, 1, 0));
        assert_eq!(agg.audit_failures, 0);
    }

    #[test]
    fn fuel_exhaustion_is_reclaimed_and_audited() {
        let ctx = ctx();
        let mut r = req("rbtree");
        r.fuel = Some(2_000); // dies mid-build with live frames
        let (heap, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"fuel-exhausted\""), "{resp}");
        assert!(resp.contains("\"code\":\"step-limit\""), "{resp}");
        assert!(resp.contains("\"audit_ok\":true"), "{resp}");
        assert_eq!(
            heap.live_blocks(),
            0,
            "reset must retire the tenant's garbage"
        );
        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!(agg.fuel_exhausted, 1);
        assert!(
            agg.reclaimed_blocks > 0,
            "an aborted build leaves blocks to retire"
        );
        assert_eq!(agg.audit_failures, 0);
    }

    #[test]
    fn memory_limit_is_enforced() {
        let ctx = ctx();
        let mut r = req("rbtree");
        r.memory = Some(64); // far below the tree's live size
        let (_, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"memory-limit\""), "{resp}");
        assert!(resp.contains("\"code\":\"memory-limit\""), "{resp}");
    }

    #[test]
    fn non_rc_strategies_are_rejected() {
        let ctx = ctx();
        let mut r = req("map");
        r.strategy = Strategy::Gc;
        let (_, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"rejected\""), "{resp}");
        assert!(resp.contains("\"code\":\"not-garbage-free\""), "{resp}");
    }

    #[test]
    fn warm_session_matches_cold_schedule_counters() {
        // The drift-gate property: a session on a recycled heap must
        // reproduce a fresh heap's schedule counters exactly (only the
        // freelist trio may differ).
        let ctx = ctx();
        let (heap, cold) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &req("map"));
        let (_, warm) = run_session(heap, &ctx, &req("map"));
        let cold = crate::json::parse(&cold).unwrap();
        let warm = crate::json::parse(&warm).unwrap();
        let exempt = ["freelist_hits", "freelist_misses", "recycled_words"];
        for key in COUNTER_KEYS {
            if exempt.contains(&key) {
                continue;
            }
            assert_eq!(
                cold.get("counters").and_then(|c| c.get(key)),
                warm.get("counters").and_then(|c| c.get(key)),
                "counter {key} drifted between cold and warm sessions"
            );
        }
        // And the warm heap actually recycled: the second session's
        // allocations came off the first session's free lists.
        let hits = warm
            .get("counters")
            .and_then(|c| c.get("freelist_hits"))
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        assert!(hits > 0, "warm session must hit the recycled free lists");
    }

    #[test]
    fn resumable_session_completes_with_identical_counters() {
        // The serving restatement of resume determinism: a session
        // suspended many times must end with *bit-identical* counters
        // to an uninterrupted one (both start on a cold heap here, so
        // even the freelist trio matches).
        let ctx = ctx();
        let (_, straight) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &req("map"));
        let straight = json::parse(&straight).unwrap();

        let mut table = ParkTable::new(0);
        let mut r = req("map");
        r.resumable = true;
        r.fuel = Some(2_000);
        let first = run_resumable(&mut table, &ctx, &r);
        assert!(first.contains("\"outcome\":\"suspended\""), "{first}");
        assert!(first.contains("\"audit_ok\":true"), "{first}");
        assert!(first.contains("\"session\":"), "{first}");

        let (last, legs) = resume_to_end(&mut table, &ctx, &first, Some(2_000));
        assert!(legs >= 2, "map at test size must need several legs");
        let last = json::parse(&last).unwrap();
        assert_eq!(last.get("outcome").and_then(Json::as_str), Some("ok"));
        assert_eq!(last.get("leaked_blocks").and_then(Json::as_u64), Some(0));
        assert_eq!(last.get("audit_ok").and_then(Json::as_bool), Some(true));
        assert_eq!(last.get("resumes").and_then(Json::as_u64), Some(legs));
        for key in COUNTER_KEYS {
            assert_eq!(
                straight.get("counters").and_then(|c| c.get(key)),
                last.get("counters").and_then(|c| c.get(key)),
                "counter {key} drifted between straight and resumed sessions"
            );
        }
        assert_eq!(
            straight.get("value").and_then(Json::as_str),
            last.get("value").and_then(Json::as_str),
        );

        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!(agg.ok, 2);
        assert_eq!(agg.suspended, legs, "every leg but the last suspended");
        assert_eq!(agg.resumes, legs);
        assert_eq!(agg.evicted, 0);
        assert_eq!(agg.audit_failures, 0);
        drop(agg);
        assert_eq!(ctx.parked.load(Ordering::Relaxed), 0);
        assert_eq!(ctx.parked_words.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn borrowed_snapshot_session_pays_zero_atomics() {
        let ctx = ctx();
        let mut owned = req("map");
        owned.shared = true;
        let (heap, a) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &owned);
        let a = json::parse(&a).unwrap();
        assert_eq!(a.get("outcome").and_then(Json::as_str), Some("ok"));
        assert!(
            a.get("atomic_ops").and_then(Json::as_u64).unwrap() > 0,
            "owned shared reads pay per-visit RMWs"
        );

        let mut borrowed = req("map");
        borrowed.shared = true;
        borrowed.borrow = true;
        let (_, b) = run_session(heap, &ctx, &borrowed);
        let b = json::parse(&b).unwrap();
        assert_eq!(b.get("outcome").and_then(Json::as_str), Some("ok"), "{b:?}");
        assert_eq!(b.get("borrow").and_then(Json::as_bool), Some(true));
        assert_eq!(
            b.get("atomic_ops").and_then(Json::as_u64),
            Some(0),
            "the snapshot path must be RMW-free: {b:?}"
        );
        assert_eq!(b.get("shared_ref_drift").and_then(Json::as_u64), Some(0));
        assert_eq!(b.get("leaked_blocks").and_then(Json::as_u64), Some(0));
        assert_eq!(
            a.get("value").and_then(Json::as_str),
            b.get("value").and_then(Json::as_str),
            "owned and borrowed reads agree"
        );
        // The borrowed build attached the owned build's frozen input
        // (keyed borrow-agnostically), and the segment is untouched.
        let (entries, live, baseline) = ctx.inputs.stats();
        assert_eq!(entries, 1, "one frozen input serves both builds");
        assert_eq!(live, baseline);
    }

    #[test]
    fn unservable_borrow_combinations_are_rejected() {
        let ctx = ctx();
        let mut r = req("map");
        r.borrow = true; // missing shared
        let (_, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"rejected\""), "{resp}");
        assert!(
            resp.contains("\"code\":\"borrow-without-shared\""),
            "{resp}"
        );

        let mut r = req("map");
        r.borrow = true;
        r.shared = true;
        r.strategy = Strategy::Scoped;
        let (_, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"code\":\"borrow-unsupported\""), "{resp}");

        let mut r = req("map");
        r.borrow = true;
        r.shared = true;
        r.resumable = true;
        let mut table = ParkTable::new(0);
        let resp = run_resumable(&mut table, &ctx, &r);
        assert!(resp.contains("\"code\":\"borrow-not-resumable\""), "{resp}");

        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!(
            (agg.sessions, agg.failed),
            (3, 3),
            "each rejection is a booked terminal session"
        );
    }

    #[test]
    fn resume_of_unknown_session_is_rejected() {
        let ctx = ctx();
        let mut table = ParkTable::new(0);
        let resp = resume_session(
            &mut table,
            &ctx,
            &ResumeRequest {
                id: 7,
                session: 12345,
                fuel: None,
            },
        );
        assert!(resp.contains("\"outcome\":\"rejected\""), "{resp}");
        assert!(resp.contains("\"code\":\"no-such-session\""), "{resp}");
        assert!(resp.contains("\"id\":7"), "{resp}");
    }

    #[test]
    fn park_pressure_evicts_oldest_with_heap_repayment() {
        let mut ctx = ctx();
        ctx.park_capacity = 1;
        let mut table = ParkTable::new(3);
        let mut r = req("rbtree");
        r.resumable = true;
        r.fuel = Some(2_000);
        let a = json::parse(&run_resumable(&mut table, &ctx, &r)).unwrap();
        let b = json::parse(&run_resumable(&mut table, &ctx, &r)).unwrap();
        let tok_a = a.get("session").and_then(Json::as_u64).unwrap();
        let tok_b = b.get("session").and_then(Json::as_u64).unwrap();
        assert_eq!(tok_a >> 48, 3, "token carries the shard in its high bits");
        assert_ne!(tok_a, tok_b);
        // Parking B evicted A (capacity 1, oldest first) with a real
        // abort: terminal accounting, words repaid, audit clean.
        {
            let agg = ctx.aggregate.lock().unwrap();
            assert_eq!((agg.evicted, agg.sessions), (1, 1));
            assert!(agg.reclaimed_blocks > 0, "the evicted heap had live data");
            assert_eq!(agg.audit_failures, 0);
        }
        assert_eq!(ctx.parked.load(Ordering::Relaxed), 1);
        let resp = resume_session(
            &mut table,
            &ctx,
            &ResumeRequest {
                id: 9,
                session: tok_a,
                fuel: None,
            },
        );
        assert!(resp.contains("\"code\":\"no-such-session\""), "{resp}");
        // B is untouched and still runs to completion.
        let b_raw = resume_session(
            &mut table,
            &ctx,
            &ResumeRequest {
                id: 10,
                session: tok_b,
                fuel: None,
            },
        );
        let (last, _) = resume_to_end(&mut table, &ctx, &b_raw, None);
        assert!(last.contains("\"outcome\":\"ok\""), "{last}");
        assert_eq!(ctx.parked.load(Ordering::Relaxed), 0);
        assert_eq!(ctx.parked_words.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shutdown_drain_evicts_parked_sessions() {
        let ctx = ctx();
        let mut table = ParkTable::new(0);
        let mut r = req("rbtree");
        r.resumable = true;
        r.fuel = Some(2_000);
        let first = run_resumable(&mut table, &ctx, &r);
        assert!(first.contains("\"outcome\":\"suspended\""), "{first}");
        assert_eq!(ctx.parked.load(Ordering::Relaxed), 1);
        table.evict_all(&ctx);
        assert_eq!(ctx.parked.load(Ordering::Relaxed), 0);
        assert_eq!(ctx.parked_words.load(Ordering::Relaxed), 0);
        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!(agg.evicted, 1);
        assert_eq!(agg.audit_failures, 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs_with_rejection() {
        use std::sync::mpsc;
        let ctx = Arc::new(ctx());
        let (tx, rx) = mpsc::sync_channel::<Job>(8);
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        for id in 0..2 {
            ctx.inflight.fetch_add(1, Ordering::Relaxed);
            tx.send(Job::Run(RunJob {
                req: RunRequest { id, ..req("map") },
                reply: reply_tx.clone(),
            }))
            .unwrap();
        }
        ctx.inflight.fetch_add(1, Ordering::Relaxed);
        tx.send(Job::Resume(ResumeJob {
            req: ResumeRequest {
                id: 2,
                session: 1,
                fuel: None,
            },
            reply: reply_tx.clone(),
        }))
        .unwrap();
        drop(tx);
        drop(reply_tx);
        let shutdown = Arc::new(AtomicBool::new(true));
        worker_loop(0, rx, Arc::clone(&ctx), shutdown);
        let replies: Vec<String> = reply_rx.try_iter().collect();
        assert_eq!(replies.len(), 3, "every queued job must be answered");
        for r in &replies {
            assert!(r.contains("\"outcome\":\"rejected\""), "{r}");
            assert!(r.contains("\"code\":\"shutdown\""), "{r}");
            assert!(r.contains("shutting down"), "{r}");
        }
        assert_eq!(
            ctx.inflight.load(Ordering::Relaxed),
            0,
            "the inflight gauge must return to zero"
        );
        assert_eq!(ctx.rejected.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn aborted_shared_session_reports_ref_drift_and_never_unpins_the_input() {
        let ctx = ctx();
        // A healthy shared session freezes the input and balances its
        // ledger.
        let mut warm = req("map");
        warm.shared = true;
        let (heap, a) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &warm);
        assert!(a.contains("\"outcome\":\"ok\""), "{a}");
        assert!(a.contains("\"shared_ref_drift\":0"), "{a}");
        // Starve a shared session: it dies with shared references
        // still rooted in dead machine frames.
        let mut starved = req("map");
        starved.shared = true;
        starved.fuel = Some(800);
        let (heap, b) = run_session(heap, &ctx, &starved);
        assert!(b.contains("\"outcome\":\"fuel-exhausted\""), "{b}");
        assert!(b.contains("\"audit_ok\":true"), "{b}");
        assert_eq!(heap.live_blocks(), 0, "local heap still resets clean");
        let agg = ctx.aggregate.lock().unwrap();
        assert!(
            agg.shared_ref_drift > 0,
            "the un-returned references must surface as measured drift"
        );
        drop(agg);
        // Drift only *pins* shared blocks (counts inflate): the
        // segment's live gauge never moves, so successors are safe.
        let (_, live, baseline) = ctx.inputs.stats();
        assert_eq!(live, baseline);
        // And a successor shared session on the same heap still works.
        let mut again = req("map");
        again.shared = true;
        let (_, c) = run_session(heap, &ctx, &again);
        assert!(c.contains("\"outcome\":\"ok\""), "{c}");
        assert!(c.contains("\"shared_ref_drift\":0"), "{c}");
    }

    #[test]
    fn shared_sessions_reuse_one_frozen_input() {
        let ctx = ctx();
        let mut r = req("map");
        r.shared = true;
        let (heap, a) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        let (_, b) = run_session(heap, &ctx, &r);
        assert!(a.contains("\"outcome\":\"ok\""), "{a}");
        assert!(b.contains("\"outcome\":\"ok\""), "{b}");
        let (entries, _, _) = ctx.inputs.stats();
        assert_eq!(entries, 1, "second session must reuse the frozen input");
        // The cached entry keeps its baseline reference: the segment is
        // exactly as live as the moment it was frozen.
        let input = ctx.inputs.get(
            crate::cache::program_key(
                perceus_suite::workload("map").unwrap().source,
                Strategy::Perceus,
                false,
            ),
            perceus_suite::workload("map").unwrap().test_n,
        );
        let input = input.unwrap();
        assert_eq!(input.seg.live_blocks(), input.live_baseline);
    }
}
