//! The session worker: one OS thread owning one long-lived [`Heap`],
//! recycled across thousands of tenant sessions.
//!
//! This is the serving payoff of the paper's garbage-freedom theorems
//! (Thm. 2/4). Because a Perceus session frees everything it allocates
//! by the time its result is dropped, a worker does not need a fresh
//! heap per tenant: it runs a session with [`Machine::with_heap`],
//! takes the heap back with [`Machine::into_heap`], and calls
//! [`Heap::reset`] — which retires whatever an *aborted* session left
//! behind (fuel/memory-limited runs die mid-expression with values
//! still rooted in machine frames), bumps the generation of every
//! retired slot so stale addresses from the dead tenant fail
//! deterministically, and feeds the slots back to the size-class free
//! lists. A well-behaved session reclaims zero blocks at reset and its
//! successor allocates straight out of the previous tenants' warm free
//! lists.
//!
//! After every reset the worker audits its heap with
//! [`audit::check_heap`]: the per-session garbage-free check that makes
//! "zero leaks across N tenants" an asserted property instead of a
//! hope. Session statistics and (optional) attributed profiles fold
//! into the server-wide aggregate with the associative [`Stats::merge`]
//! / [`Profiler::merge`], so the totals are independent of completion
//! order under churn.

use crate::cache::{ProgramCache, SharedInput, SharedInputs};
use crate::json::ObjBuilder;
use crate::protocol::{Outcome, RunRequest};
use perceus_bench::counters::counter_values;
use perceus_bench::COUNTER_KEYS;
use perceus_runtime::audit;
use perceus_runtime::machine::{Machine, RunConfig};
use perceus_runtime::{Heap, Profiler, ReclaimMode, RuntimeError, SharedHeap, Stats, Value};
use perceus_suite::ParallelSpec;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A session admitted to a worker queue: the parsed request plus the
/// owning connection's writer channel.
pub struct Job {
    pub req: RunRequest,
    pub reply: Sender<String>,
}

/// Server-wide totals, folded under one lock at session completion.
#[derive(Default)]
pub struct Aggregate {
    /// Sessions that ran to some terminal state on a worker.
    pub sessions: u64,
    pub ok: u64,
    pub fuel_exhausted: u64,
    pub memory_limit: u64,
    pub compile_errors: u64,
    pub failed: u64,
    /// Blocks still live after an *ok* session dropped its result —
    /// genuine leaks; the serve-smoke gate requires this to stay zero.
    pub leaked_blocks: u64,
    /// Blocks [`Heap::reset`] retired after aborted sessions (expected
    /// to be nonzero exactly when sessions hit fuel/memory limits).
    pub reclaimed_blocks: u64,
    /// Post-reset [`audit::check_heap`] failures (must stay zero).
    pub audit_failures: u64,
    /// Shared-segment references that aborted shared sessions failed
    /// to return (the one-way drift documented in `docs/SERVING.md`):
    /// a session killed by a fuel/memory limit may die with shared
    /// references still rooted in dead machine frames. [`Heap::reset`]
    /// repays the references held by local block *fields*; the
    /// frame-held residue only pins shared blocks (counts inflate, so
    /// they are never freed early) and is bounded by the segment,
    /// whose storage is released wholesale when the cache entry drops.
    /// Must stay zero for every *ok* session.
    pub shared_ref_drift: u64,
    /// All session heap statistics, merged associatively.
    pub stats: Stats,
    /// Merged attributed profile of every `profile:true` session.
    pub profile: Option<Profiler>,
}

/// State shared by every worker, connection, and the control plane.
pub struct ServeCtx {
    pub programs: ProgramCache,
    pub inputs: SharedInputs,
    pub aggregate: Mutex<Aggregate>,
    /// Fuel (steps) granted when the request doesn't ask.
    pub default_fuel: u64,
    /// Hard per-session fuel ceiling (requests are clamped).
    pub max_fuel: u64,
    /// Live-word budget granted when the request doesn't ask.
    pub default_memory: u64,
    /// Hard per-session live-word ceiling (requests are clamped).
    pub max_memory: u64,
    /// Sessions admitted but not yet answered (admission control).
    pub inflight: AtomicU64,
    /// Sessions turned away by admission control.
    pub rejected: AtomicU64,
}

/// The worker loop: pull a job, run the session on the recycled heap,
/// answer, repeat. Exits when the shutdown flag rises or the queue's
/// senders are gone.
pub fn worker_loop(jobs: Receiver<Job>, ctx: Arc<ServeCtx>, shutdown: Arc<AtomicBool>) {
    // Workers serve only garbage-free (rc) strategies, so one Rc-mode
    // heap works for every tenant regardless of which rc strategy
    // compiled its program.
    let mut heap = Heap::new(ReclaimMode::Rc);
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let (returned, response) = run_session(heap, &ctx, &job.req);
                heap = returned;
                // A dead connection just discards the response.
                let _ = job.reply.send(response);
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
    // Shutdown with jobs possibly still queued (or racing in from
    // connections that haven't seen the flag yet): every admitted job
    // must still be answered and the inflight gauge returned to zero,
    // or its client hangs until EOF. Keep receiving until the last
    // sender is gone — connection threads exit on the same flag, so
    // disconnection is guaranteed.
    loop {
        match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let _ = job.reply.send(crate::protocol::error_response(
                    job.req.id,
                    Outcome::Rejected,
                    "server shutting down",
                ));
                ctx.rejected.fetch_add(1, Ordering::Relaxed);
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one session on the worker's heap and returns the heap (reset,
/// ready for the next tenant) and the response line.
pub fn run_session(heap: Heap, ctx: &ServeCtx, req: &RunRequest) -> (Heap, String) {
    let start = Instant::now();
    let (prog, cached) = match ctx.programs.resolve(req) {
        Ok(p) => p,
        Err(e) => {
            finish_failed(ctx, Outcome::CompileError);
            return (
                heap,
                run_error(req.id, Outcome::CompileError, &e.to_string()),
            );
        }
    };
    if !prog.strategy.is_rc() {
        // Per-session audits and heap recycling both lean on
        // garbage-freedom; a deferred-reclamation tenant would leave
        // floating garbage the reset would misreport as a leak.
        finish_failed(ctx, Outcome::Rejected);
        let msg = format!(
            "strategy {:?} is not garbage-free; serve accepts rc strategies only",
            prog.strategy.label()
        );
        return (heap, run_error(req.id, Outcome::Rejected, &msg));
    }
    let n = req.n.unwrap_or(prog.default_n);
    let fuel = req.fuel.unwrap_or(ctx.default_fuel).min(ctx.max_fuel);
    let memory = req.memory.unwrap_or(ctx.default_memory).min(ctx.max_memory);
    let config = RunConfig {
        step_limit: Some(fuel),
        memory_limit_words: Some(memory),
        profile: req.profile,
        ..RunConfig::default()
    };

    let shared = if req.shared {
        let Some(spec) = prog.spec else {
            finish_failed(ctx, Outcome::Rejected);
            let msg = format!("workload `{}` declares no shared input", prog.name);
            return (heap, run_error(req.id, Outcome::Rejected, &msg));
        };
        match shared_input(ctx, &prog, spec, n) {
            Ok(input) => Some((input, spec)),
            Err(e) => {
                finish_failed(ctx, Outcome::Failed);
                return (heap, run_error(req.id, Outcome::Failed, &e));
            }
        }
    } else {
        None
    };

    let mut m = Machine::with_heap(&prog.compiled, heap, config);
    let run = match &shared {
        Some((input, spec)) => {
            m.heap.attach_shared(Arc::clone(&input.seg));
            // Mint this session's own reference with a real atomic RMW
            // (the cache holds the builder's reference, so the count
            // stays ≥ 1 between sessions); the consume call's owned
            // calling convention spends it.
            m.heap.dup(input.root).and_then(|()| {
                let f = prog.compiled.find_fun(spec.consume).ok_or_else(|| {
                    RuntimeError::Internal(format!("no consume function `{}`", spec.consume))
                })?;
                m.run_fun(f, (spec.consume_args)(input.root, n))
            })
        }
        None => m.run_entry(vec![Value::Int(n)]),
    };

    let (outcome, value, error) = match run {
        Ok(v) => match m.read_back(v).and_then(|dv| {
            m.drop_result(v)?;
            Ok(dv)
        }) {
            Ok(dv) => (Outcome::Ok, Some(dv.to_string()), None),
            Err(e) => (Outcome::Failed, None, Some(e.to_string())),
        },
        Err(RuntimeError::StepLimit(_)) => (
            Outcome::FuelExhausted,
            None,
            Some(format!("fuel budget of {fuel} steps exhausted")),
        ),
        Err(RuntimeError::MemoryLimit { live_words, .. }) => (
            Outcome::MemoryLimit,
            None,
            Some(format!(
                "memory budget of {memory} words exceeded ({live_words} live)"
            )),
        ),
        Err(e) => (Outcome::Failed, None, Some(e.to_string())),
    };

    let output = m.output().to_vec();
    let mut heap = m.into_heap();
    let stats = heap.stats;
    let profile = heap.take_profile();
    let leaked = heap.live_blocks();
    let reclaimed = heap.reset();
    // References the session minted into the shared segment but never
    // spent (nonzero only for shared sessions aborted by a limit; the
    // reset already repaid the block-field-held part).
    let shared_drift = heap.take_shared_drift();
    let audit_ok = audit::check_heap(&heap, &[]).is_ok();

    {
        let mut agg = ctx.aggregate.lock().unwrap();
        agg.sessions += 1;
        match outcome {
            Outcome::Ok => agg.ok += 1,
            Outcome::FuelExhausted => agg.fuel_exhausted += 1,
            Outcome::MemoryLimit => agg.memory_limit += 1,
            Outcome::CompileError => agg.compile_errors += 1,
            Outcome::Failed | Outcome::Rejected | Outcome::Busy => agg.failed += 1,
        }
        if outcome == Outcome::Ok {
            agg.leaked_blocks += leaked;
        }
        agg.reclaimed_blocks += reclaimed;
        agg.shared_ref_drift += shared_drift;
        if !audit_ok {
            agg.audit_failures += 1;
        }
        agg.stats = agg.stats.merge(&stats);
        agg.profile = match (agg.profile.take(), profile) {
            (Some(a), Some(b)) => Some(a.merge(&b)),
            (a, b) => a.or(b),
        };
    }

    let mut b = ObjBuilder::new()
        .u64("id", req.id)
        .bool("ok", outcome == Outcome::Ok)
        .str("outcome", outcome.label())
        .str("program", &prog.name)
        .str("strategy", prog.strategy.label())
        .i64("n", n)
        .bool("cached", cached)
        .bool("shared", shared.is_some())
        .u64("micros", start.elapsed().as_micros() as u64)
        .u64("leaked_blocks", leaked)
        .u64("reclaimed_blocks", reclaimed)
        .u64("shared_ref_drift", shared_drift)
        .bool("audit_ok", audit_ok)
        .raw("counters", &render_counters(&stats));
    if let Some(v) = &value {
        b = b.str("value", v);
    }
    if let Some(e) = &error {
        b = b.str("error", e);
    }
    if !output.is_empty() {
        let mut arr = String::from("[");
        for (i, v) in output.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let _ = write!(arr, "{v}");
        }
        arr.push(']');
        b = b.raw("output", &arr);
    }
    (heap, b.finish())
}

/// All 18 gated counters of one session, as a JSON object fragment in
/// [`COUNTER_KEYS`] order (the loadtest drift check reads these).
fn render_counters(stats: &Stats) -> String {
    let mut b = ObjBuilder::new();
    for (key, value) in COUNTER_KEYS.iter().zip(counter_values(stats)) {
        b = b.u64(key, value);
    }
    b.finish()
}

/// Looks up the frozen shared input for `(program, n)`, building and
/// freezing it on first use. Racing builders are benign: the loser's
/// segment is dropped and both sessions use the cached winner.
fn shared_input(
    ctx: &ServeCtx,
    prog: &crate::cache::CachedProgram,
    spec: ParallelSpec,
    n: i64,
) -> Result<Arc<SharedInput>, String> {
    if let Some(input) = ctx.inputs.get(prog.key, n) {
        return Ok(input);
    }
    let build = prog
        .compiled
        .find_fun(spec.build)
        .ok_or_else(|| format!("no build function `{}`", spec.build))?;
    // Build on a throwaway machine, not the worker heap: after the
    // share barrier the builder heap must be empty anyway, and a build
    // failure must not contaminate the tenant heap.
    let mut builder = Machine::new(
        &prog.compiled,
        prog.strategy.reclaim_mode(),
        RunConfig::default(),
    );
    let v = builder
        .run_fun(build, (spec.build_args)(n))
        .map_err(|e| format!("shared-input build failed: {e}"))?;
    let mut seg = SharedHeap::new();
    let root = builder
        .heap
        .mark_shared(v, &mut seg)
        .map_err(|e| format!("share barrier failed: {e}"))?;
    if builder.heap.live_blocks() != 0 {
        return Err(format!(
            "builder heap retains {} blocks after the share barrier",
            builder.heap.live_blocks()
        ));
    }
    {
        let mut agg = ctx.aggregate.lock().unwrap();
        agg.stats = agg.stats.merge(&builder.heap.stats);
    }
    let live_baseline = seg.live_blocks();
    Ok(ctx.inputs.insert(
        prog.key,
        n,
        SharedInput {
            seg: Arc::new(seg),
            root,
            live_baseline,
        },
    ))
}

/// Books a session that never reached the machine.
fn finish_failed(ctx: &ServeCtx, outcome: Outcome) {
    let mut agg = ctx.aggregate.lock().unwrap();
    agg.sessions += 1;
    match outcome {
        Outcome::CompileError => agg.compile_errors += 1,
        _ => agg.failed += 1,
    }
}

/// An error response for a session that produced no counters.
fn run_error(id: u64, outcome: Outcome, msg: &str) -> String {
    crate::protocol::error_response(id, outcome, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_suite::Strategy;

    fn ctx() -> ServeCtx {
        ServeCtx {
            programs: ProgramCache::new(64),
            inputs: SharedInputs::default(),
            aggregate: Mutex::new(Aggregate::default()),
            default_fuel: 10_000_000,
            max_fuel: 100_000_000,
            default_memory: 1 << 20,
            max_memory: 64 << 20,
            inflight: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn req(workload: &str) -> RunRequest {
        RunRequest {
            id: 1,
            workload: Some(workload.into()),
            source: None,
            n: None,
            strategy: Strategy::Perceus,
            fuel: None,
            memory: None,
            shared: false,
            profile: false,
        }
    }

    #[test]
    fn ok_session_leaves_heap_clean() {
        let ctx = ctx();
        let (heap, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &req("map"));
        assert!(resp.contains("\"outcome\":\"ok\""), "{resp}");
        assert!(resp.contains("\"leaked_blocks\":0"), "{resp}");
        assert!(resp.contains("\"reclaimed_blocks\":0"), "{resp}");
        assert_eq!(heap.live_blocks(), 0);
        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!((agg.sessions, agg.ok, agg.leaked_blocks), (1, 1, 0));
        assert_eq!(agg.audit_failures, 0);
    }

    #[test]
    fn fuel_exhaustion_is_reclaimed_and_audited() {
        let ctx = ctx();
        let mut r = req("rbtree");
        r.fuel = Some(2_000); // dies mid-build with live frames
        let (heap, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"fuel-exhausted\""), "{resp}");
        assert!(resp.contains("\"audit_ok\":true"), "{resp}");
        assert_eq!(
            heap.live_blocks(),
            0,
            "reset must retire the tenant's garbage"
        );
        let agg = ctx.aggregate.lock().unwrap();
        assert_eq!(agg.fuel_exhausted, 1);
        assert!(
            agg.reclaimed_blocks > 0,
            "an aborted build leaves blocks to retire"
        );
        assert_eq!(agg.audit_failures, 0);
    }

    #[test]
    fn memory_limit_is_enforced() {
        let ctx = ctx();
        let mut r = req("rbtree");
        r.memory = Some(64); // far below the tree's live size
        let (_, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"memory-limit\""), "{resp}");
    }

    #[test]
    fn non_rc_strategies_are_rejected() {
        let ctx = ctx();
        let mut r = req("map");
        r.strategy = Strategy::Gc;
        let (_, resp) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        assert!(resp.contains("\"outcome\":\"rejected\""), "{resp}");
    }

    #[test]
    fn warm_session_matches_cold_schedule_counters() {
        // The drift-gate property: a session on a recycled heap must
        // reproduce a fresh heap's schedule counters exactly (only the
        // freelist trio may differ).
        let ctx = ctx();
        let (heap, cold) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &req("map"));
        let (_, warm) = run_session(heap, &ctx, &req("map"));
        let cold = crate::json::parse(&cold).unwrap();
        let warm = crate::json::parse(&warm).unwrap();
        let exempt = ["freelist_hits", "freelist_misses", "recycled_words"];
        for key in COUNTER_KEYS {
            if exempt.contains(&key) {
                continue;
            }
            assert_eq!(
                cold.get("counters").and_then(|c| c.get(key)),
                warm.get("counters").and_then(|c| c.get(key)),
                "counter {key} drifted between cold and warm sessions"
            );
        }
        // And the warm heap actually recycled: the second session's
        // allocations came off the first session's free lists.
        let hits = warm
            .get("counters")
            .and_then(|c| c.get("freelist_hits"))
            .and_then(crate::json::Json::as_u64)
            .unwrap();
        assert!(hits > 0, "warm session must hit the recycled free lists");
    }

    #[test]
    fn shutdown_drains_queued_jobs_with_rejection() {
        use std::sync::mpsc;
        let ctx = Arc::new(ctx());
        let (tx, rx) = mpsc::sync_channel::<Job>(8);
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        for id in 0..3 {
            ctx.inflight.fetch_add(1, Ordering::Relaxed);
            tx.send(Job {
                req: RunRequest { id, ..req("map") },
                reply: reply_tx.clone(),
            })
            .unwrap();
        }
        drop(tx);
        drop(reply_tx);
        let shutdown = Arc::new(AtomicBool::new(true));
        worker_loop(rx, Arc::clone(&ctx), shutdown);
        let replies: Vec<String> = reply_rx.try_iter().collect();
        assert_eq!(replies.len(), 3, "every queued job must be answered");
        for r in &replies {
            assert!(r.contains("\"outcome\":\"rejected\""), "{r}");
            assert!(r.contains("shutting down"), "{r}");
        }
        assert_eq!(
            ctx.inflight.load(Ordering::Relaxed),
            0,
            "the inflight gauge must return to zero"
        );
        assert_eq!(ctx.rejected.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn aborted_shared_session_reports_ref_drift_and_never_unpins_the_input() {
        let ctx = ctx();
        // A healthy shared session freezes the input and balances its
        // ledger.
        let mut warm = req("map");
        warm.shared = true;
        let (heap, a) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &warm);
        assert!(a.contains("\"outcome\":\"ok\""), "{a}");
        assert!(a.contains("\"shared_ref_drift\":0"), "{a}");
        // Starve a shared session: it dies with shared references
        // still rooted in dead machine frames.
        let mut starved = req("map");
        starved.shared = true;
        starved.fuel = Some(800);
        let (heap, b) = run_session(heap, &ctx, &starved);
        assert!(b.contains("\"outcome\":\"fuel-exhausted\""), "{b}");
        assert!(b.contains("\"audit_ok\":true"), "{b}");
        assert_eq!(heap.live_blocks(), 0, "local heap still resets clean");
        let agg = ctx.aggregate.lock().unwrap();
        assert!(
            agg.shared_ref_drift > 0,
            "the un-returned references must surface as measured drift"
        );
        drop(agg);
        // Drift only *pins* shared blocks (counts inflate): the
        // segment's live gauge never moves, so successors are safe.
        let (_, live, baseline) = ctx.inputs.stats();
        assert_eq!(live, baseline);
        // And a successor shared session on the same heap still works.
        let mut again = req("map");
        again.shared = true;
        let (_, c) = run_session(heap, &ctx, &again);
        assert!(c.contains("\"outcome\":\"ok\""), "{c}");
        assert!(c.contains("\"shared_ref_drift\":0"), "{c}");
    }

    #[test]
    fn shared_sessions_reuse_one_frozen_input() {
        let ctx = ctx();
        let mut r = req("map");
        r.shared = true;
        let (heap, a) = run_session(Heap::new(ReclaimMode::Rc), &ctx, &r);
        let (_, b) = run_session(heap, &ctx, &r);
        assert!(a.contains("\"outcome\":\"ok\""), "{a}");
        assert!(b.contains("\"outcome\":\"ok\""), "{b}");
        let (entries, _, _) = ctx.inputs.stats();
        assert_eq!(entries, 1, "second session must reuse the frozen input");
        // The cached entry keeps its baseline reference: the segment is
        // exactly as live as the moment it was frozen.
        let input = ctx.inputs.get(
            crate::cache::program_key(
                perceus_suite::workload("map").unwrap().source,
                Strategy::Perceus,
            ),
            perceus_suite::workload("map").unwrap().test_n,
        );
        let input = input.unwrap();
        assert_eq!(input.seg.live_blocks(), input.live_baseline);
    }
}
