//! A minimal JSON reader/writer for the wire protocol.
//!
//! The build environment is offline (no serde), so the protocol uses
//! the same hand-rolled discipline as `perceus-bench`'s baseline
//! parser: a small recursive-descent reader over exactly the JSON
//! subset the protocol emits, and escape-correct writers. One request
//! or response is one JSON object on one line (newline-delimited), so
//! framing is trivial and a stream can be inspected with standard
//! tools.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All protocol numbers are integers (ids, sizes, counters); a
    /// fractional literal is parsed but truncates when read as `i64`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Reads a field of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a signed integer, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document (a full line of the protocol).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    // Non-empty by the peek above, but a request line is
                    // attacker-controlled: fail the parse, never panic
                    // the connection thread.
                    let c = s.chars().next().ok_or("empty utf-8 sequence")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

/// Appends a JSON string literal (with escapes) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A builder for one-line JSON objects (insertion order preserved —
/// responses lead with `id`/`ok` so a human can scan a stream).
#[derive(Default)]
pub struct ObjBuilder {
    buf: String,
    any: bool,
}

impl ObjBuilder {
    pub fn new() -> Self {
        ObjBuilder {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        push_str_lit(&mut self.buf, key);
        self.buf.push(':');
    }

    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        push_str_lit(&mut self.buf, v);
        self
    }

    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn i64(mut self, key: &str, v: i64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn f64(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{v:.3}");
        self
    }

    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Inserts a pre-rendered JSON fragment (nested object/array).
    pub fn raw(mut self, key: &str, fragment: &str) -> Self {
        self.key(key);
        self.buf.push_str(fragment);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let line = ObjBuilder::new()
            .str("op", "run")
            .u64("id", 7)
            .str("workload", "rbtree")
            .i64("n", 400)
            .bool("shared", false)
            .raw("output", "[1,2,3]")
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(400));
        assert_eq!(v.get("shared").and_then(Json::as_bool), Some(false));
        assert!(matches!(v.get("output"), Some(Json::Arr(a)) if a.len() == 3));
    }

    #[test]
    fn escapes_are_bidirectional() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd\te");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
