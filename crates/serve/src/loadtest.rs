//! The traffic generator: thousands of concurrent mixed-workload
//! sessions against a daemon, with a latency-percentile report and a
//! per-session counter-drift gate.
//!
//! Each client connection keeps a *window* of requests pipelined, so
//! `concurrency = connections × window` sessions are in flight at
//! once without needing a thread per session. Responses come back in
//! completion order and are matched to their send times by `id`.
//!
//! The drift gate is the serving restatement of the repo's
//! deterministic counter baseline (`BENCH_BASELINE.json`): every
//! successful non-shared session at a workload's test size must
//! reproduce the baseline's *schedule counters* exactly — warm heap or
//! cold, first tenant on a worker or ten-thousandth. The three
//! allocator-placement counters (`freelist_hits`, `freelist_misses`,
//! `recycled_words`) are exempt: they legitimately improve on a warm
//! recycled heap, which is the whole point of heap recycling. Sessions
//! deliberately aborted by the fuel knob are checked for clean
//! reclamation instead (audit passes, worker heap survives).

use crate::json::{self, Json, ObjBuilder};
use perceus_bench::Baseline;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counters whose values depend on allocator placement (warm vs cold
/// free lists), not on the execution schedule — exempt from the exact
/// drift gate.
pub const PLACEMENT_COUNTERS: [&str; 3] = ["freelist_hits", "freelist_misses", "recycled_words"];

/// Traffic-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: String,
    /// Total sessions to run.
    pub sessions: u64,
    /// Client connections.
    pub connections: usize,
    /// Pipelined requests per connection (total concurrency is
    /// `connections × window`).
    pub window: usize,
    /// Workload mix, cycled per session.
    pub mix: Vec<String>,
    /// Every k-th session runs over the cross-session shared input
    /// (0 disables). Applies to workloads that declare one.
    pub shared_every: u64,
    /// Every k-th session gets a deliberately tiny fuel budget so the
    /// run exercises abort-and-reclaim under churn (0 disables).
    pub starve_every: u64,
    /// When true (the default), fuel-starved sessions are sent
    /// `resumable:true` and driven to completion with `resume` ops —
    /// the checkpoint/resume traffic mix. Every starved session must
    /// then end `ok` (bit-identical counters, which the drift gate
    /// checks) or be cleanly evicted (`no-such-session` on resume).
    /// When false, starved sessions abort with `fuel-exhausted` as in
    /// protocol v1.
    pub resume: bool,
    /// Per-leg fuel for starved resumable sessions and their resumes.
    pub resume_fuel: u64,
    /// Every k-th session requests an attributed profile (0 disables).
    pub profile_every: u64,
    /// Counter baseline for the drift gate (`None` skips it).
    pub baseline: Option<Baseline>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            sessions: 2000,
            connections: 16,
            window: 64,
            mix: ["map", "rbtree", "msort", "queue", "deriv", "tmap"]
                .into_iter()
                .map(String::from)
                .collect(),
            shared_every: 7,
            starve_every: 31,
            resume: true,
            resume_fuel: 2_000,
            profile_every: 97,
            baseline: None,
        }
    }
}

/// Workloads with a `ParallelSpec` (servable over the shared input).
const SHARED_CAPABLE: [&str; 2] = ["map", "refs"];

/// The aggregated result of a load run.
#[derive(Debug, Default)]
pub struct LoadReport {
    pub sessions: u64,
    pub ok: u64,
    pub fuel_exhausted: u64,
    /// Sessions turned away with `busy` (transient backpressure) and
    /// re-sent after backoff. Permanent `rejected` outcomes are *not*
    /// retried — they land in `other_outcomes` and fail the run.
    pub busy_retries: u64,
    pub other_outcomes: u64,
    /// `suspended` legs received (one starved session contributes one
    /// per exhausted budget).
    pub suspended_legs: u64,
    /// Sessions that completed after at least one `resume`.
    pub resumed_sessions: u64,
    /// Suspended sessions whose resume found the session evicted
    /// (`rejected` / `no-such-session`) — a clean terminal state under
    /// park-table pressure, counted toward the answered total.
    pub evicted_sessions: u64,
    pub shared_sessions: u64,
    pub cache_hit_sessions: u64,
    pub leaked_blocks: u64,
    pub audit_violations: u64,
    pub drift_checked: u64,
    pub drift_violations: Vec<String>,
    pub elapsed_secs: f64,
    pub latencies_micros: Vec<u64>,
}

impl LoadReport {
    fn percentile(&self, sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Whether the run met the serve-smoke gates: every session
    /// answered with a clean terminal state (ok, fuel-exhausted, or a
    /// documented eviction), zero leaks, zero audit violations, zero
    /// drift.
    pub fn passed(&self) -> bool {
        self.ok + self.fuel_exhausted + self.evicted_sessions + self.other_outcomes == self.sessions
            && self.other_outcomes == 0
            && self.leaked_blocks == 0
            && self.audit_violations == 0
            && self.drift_violations.is_empty()
    }

    /// The report as one JSON document (the loadtest's stdout).
    pub fn render_json(&self) -> String {
        let mut sorted = self.latencies_micros.clone();
        sorted.sort_unstable();
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
        };
        let mut drift = String::from("[");
        for (i, v) in self.drift_violations.iter().take(10).enumerate() {
            if i > 0 {
                drift.push(',');
            }
            json::push_str_lit(&mut drift, v);
        }
        drift.push(']');
        ObjBuilder::new()
            .bool("ok", self.passed())
            .u64("sessions", self.sessions)
            .u64("sessions_ok", self.ok)
            .u64("fuel_exhausted", self.fuel_exhausted)
            .u64("other_outcomes", self.other_outcomes)
            .u64("suspended_legs", self.suspended_legs)
            .u64("resumed_sessions", self.resumed_sessions)
            .u64("evicted_sessions", self.evicted_sessions)
            .u64("busy_retries", self.busy_retries)
            .u64("shared_sessions", self.shared_sessions)
            .u64("cache_hit_sessions", self.cache_hit_sessions)
            .u64("leaked_blocks", self.leaked_blocks)
            .u64("audit_violations", self.audit_violations)
            .u64("drift_checked", self.drift_checked)
            .u64("drift_violations", self.drift_violations.len() as u64)
            .raw("drift_sample", &drift)
            .f64("elapsed_secs", self.elapsed_secs)
            .f64(
                "throughput_per_sec",
                self.sessions as f64 / self.elapsed_secs.max(1e-9),
            )
            .u64("latency_p50_micros", self.percentile(&sorted, 0.50))
            .u64("latency_p95_micros", self.percentile(&sorted, 0.95))
            .u64("latency_p99_micros", self.percentile(&sorted, 0.99))
            .u64("latency_max_micros", sorted.last().copied().unwrap_or(0))
            .f64("latency_mean_micros", mean)
            .finish()
    }
}

/// Builds the request line for global session index `i`; returns
/// `(line, shared, resumable)`.
fn request_line(cfg: &LoadConfig, i: u64) -> (String, bool, bool) {
    let workload = &cfg.mix[(i % cfg.mix.len() as u64) as usize];
    let shared = cfg.shared_every != 0
        && i.is_multiple_of(cfg.shared_every)
        && SHARED_CAPABLE.contains(&workload.as_str());
    let starved = cfg.starve_every != 0 && i % cfg.starve_every == 3;
    let resumable = starved && cfg.resume;
    let profiled = cfg.profile_every != 0 && i % cfg.profile_every == 11;
    let mut b = ObjBuilder::new()
        .str("op", "run")
        .u64("id", i)
        .str("workload", workload);
    if shared {
        b = b.bool("shared", true);
    }
    if starved {
        // Enough fuel to start allocating, nowhere near enough to
        // finish. Resumable sessions suspend at this budget and are
        // driven to completion leg by leg; plain sessions die with
        // live data the reset must retire.
        b = b.u64("fuel", cfg.resume_fuel.max(1));
        if resumable {
            b = b.u64("v", 2).bool("resumable", true);
        }
    }
    if profiled {
        b = b.bool("profile", true);
    }
    (b.finish(), shared, resumable)
}

/// Builds the resume line for a suspended session (protocol v2).
fn resume_line(id: u64, session: u64, fuel: u64) -> String {
    ObjBuilder::new()
        .str("op", "resume")
        .u64("v", 2)
        .u64("id", id)
        .u64("session", session)
        .u64("fuel", fuel.max(1))
        .finish()
}

/// Checks one ok, non-shared session's counters against the baseline.
fn drift_check(baseline: &Baseline, workload: &str, resp: &Json, violations: &mut Vec<String>) {
    let Some(row) = baseline.workloads.iter().find(|w| w.name == workload) else {
        return;
    };
    let n = resp.get("n").and_then(Json::as_i64).unwrap_or(i64::MIN);
    if n != row.n {
        return; // baseline only covers the test size
    }
    let Some(counters) = resp.get("counters") else {
        violations.push(format!("{workload}: response has no counters"));
        return;
    };
    for (key, expected) in &row.counters {
        if PLACEMENT_COUNTERS.contains(&key.as_str()) {
            continue;
        }
        let got = counters.get(key).and_then(Json::as_u64);
        if got != Some(*expected) {
            violations.push(format!(
                "{workload}: counter {key} = {got:?}, baseline {expected}"
            ));
        }
    }
}

/// Runs the load against a daemon and aggregates the report.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.mix.is_empty() || cfg.sessions == 0 {
        return Err("loadtest needs a workload mix and at least one session".into());
    }
    let next = Arc::new(AtomicU64::new(0));
    let report = Arc::new(Mutex::new(LoadReport::default()));
    let start = Instant::now();
    let conns = cfg.connections.max(1);

    std::thread::scope(|s| -> Result<(), String> {
        let mut handles = Vec::new();
        for _ in 0..conns {
            let next = Arc::clone(&next);
            let report = Arc::clone(&report);
            handles.push(s.spawn(move || client(cfg, next, report)));
        }
        let mut first_err = None;
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => first_err = first_err.or(Some("client thread panicked".into())),
            }
        }
        first_err.map_or(Ok(()), Err)
    })?;

    let mut report = Arc::try_unwrap(report)
        .map_err(|_| "report still shared")?
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report.sessions = cfg.sessions;
    Ok(report)
}

/// One client connection: keeps `window` sessions pipelined until the
/// shared session counter runs out.
fn client(
    cfg: &LoadConfig,
    next: Arc<AtomicU64>,
    report: Arc<Mutex<LoadReport>>,
) -> Result<(), String> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);

    // One outstanding request per session id; a resumable session stays
    // in the map across its suspend/resume legs (and keeps its original
    // sent-at, so the latency covers the whole session).
    struct Pending {
        workload: String,
        sent: Instant,
        shared: bool,
        /// `Some(token)` while the outstanding line is a `resume` op.
        resume_of: Option<u64>,
        /// The session has been resumed at least once.
        resumed: bool,
    }
    let mut inflight: HashMap<u64, Pending> = HashMap::new();
    let mut local = LoadReport::default();

    let send = |id: u64,
                writer: &mut TcpStream,
                inflight: &mut HashMap<u64, Pending>|
     -> Result<(), String> {
        let (line, shared, _) = request_line(cfg, id);
        let workload = cfg.mix[(id % cfg.mix.len() as u64) as usize].clone();
        inflight.insert(
            id,
            Pending {
                workload,
                sent: Instant::now(),
                shared,
                resume_of: None,
                resumed: false,
            },
        );
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    };

    // Fill the window.
    for _ in 0..cfg.window.max(1) {
        let id = next.fetch_add(1, Ordering::Relaxed);
        if id >= cfg.sessions {
            break;
        }
        send(id, &mut writer, &mut inflight)?;
    }

    let mut line = String::new();
    while !inflight.is_empty() {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if read == 0 {
            return Err("server closed the connection mid-run".into());
        }
        let resp = json::parse(line.trim()).map_err(|e| format!("bad response: {e}"))?;
        let Some(id) = resp.get("id").and_then(Json::as_u64) else {
            return Err(format!("response without id: {}", line.trim()));
        };
        let Some(mut pending) = inflight.remove(&id) else {
            return Err(format!("response for unknown id {id}"));
        };
        let outcome = resp.get("outcome").and_then(Json::as_str).unwrap_or("?");

        if outcome == "busy" {
            // Transient backpressure: back off briefly and retry the
            // same leg (the id keeps its identity, and a resume leg
            // re-sends the same session token). Permanent "rejected"
            // outcomes deliberately fall through to `other_outcomes`
            // below — retrying a request the server can never serve
            // would livelock the client.
            local.busy_retries += 1;
            std::thread::sleep(std::time::Duration::from_millis(2));
            match pending.resume_of {
                Some(token) => {
                    let line = resume_line(id, token, cfg.resume_fuel);
                    inflight.insert(id, pending);
                    writer
                        .write_all(line.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .map_err(|e| format!("send: {e}"))?;
                }
                None => send(id, &mut writer, &mut inflight)?,
            }
            continue;
        }

        if outcome == "suspended" {
            // Non-terminal: the session is parked server-side. Push it
            // forward with another budget leg under the same id; the
            // next session is NOT dispensed until this one reaches a
            // terminal state.
            local.suspended_legs += 1;
            let Some(token) = resp.get("session").and_then(Json::as_u64) else {
                return Err(format!(
                    "suspended response without session: {}",
                    line.trim()
                ));
            };
            let resume = resume_line(id, token, cfg.resume_fuel);
            pending.resume_of = Some(token);
            pending.resumed = true;
            inflight.insert(id, pending);
            writer
                .write_all(resume.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| format!("send: {e}"))?;
            continue;
        }

        local
            .latencies_micros
            .push(pending.sent.elapsed().as_micros() as u64);
        let (workload, shared, resumed) = (pending.workload, pending.shared, pending.resumed);
        let resume_leg = pending.resume_of.is_some();
        let code = resp.get("code").and_then(Json::as_str).unwrap_or("");
        match outcome {
            "ok" => {
                local.ok += 1;
                if resumed {
                    local.resumed_sessions += 1;
                }
                let leaked = resp
                    .get("leaked_blocks")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                local.leaked_blocks += leaked;
                if resp.get("audit_ok").and_then(Json::as_bool) != Some(true) {
                    local.audit_violations += 1;
                }
                // An ok session must have returned every shared
                // reference it minted; drift is tolerated (and
                // documented) only for limit-killed sessions.
                if resp
                    .get("shared_ref_drift")
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    != 0
                {
                    local.audit_violations += 1;
                }
                if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                    local.cache_hit_sessions += 1;
                }
                if shared {
                    local.shared_sessions += 1;
                } else if let Some(b) = &cfg.baseline {
                    local.drift_checked += 1;
                    drift_check(b, &workload, &resp, &mut local.drift_violations);
                }
            }
            "fuel-exhausted" => {
                local.fuel_exhausted += 1;
                // The abort is only acceptable if the worker heap came
                // back clean.
                if resp.get("audit_ok").and_then(Json::as_bool) != Some(true) {
                    local.audit_violations += 1;
                }
            }
            // A resume that finds its session gone was evicted under
            // park-table pressure — the server already audited and
            // repaid the parked heap when it aborted the session, so
            // this is a clean terminal state, not a failure.
            "rejected" if resume_leg && code == "no-such-session" => {
                local.evicted_sessions += 1;
            }
            _ => local.other_outcomes += 1,
        }

        let id = next.fetch_add(1, Ordering::Relaxed);
        if id < cfg.sessions {
            send(id, &mut writer, &mut inflight)?;
        }
    }

    let mut r = crate::relock(&report);
    r.ok += local.ok;
    r.fuel_exhausted += local.fuel_exhausted;
    r.busy_retries += local.busy_retries;
    r.other_outcomes += local.other_outcomes;
    r.suspended_legs += local.suspended_legs;
    r.resumed_sessions += local.resumed_sessions;
    r.evicted_sessions += local.evicted_sessions;
    r.shared_sessions += local.shared_sessions;
    r.cache_hit_sessions += local.cache_hit_sessions;
    r.leaked_blocks += local.leaked_blocks;
    r.audit_violations += local.audit_violations;
    r.drift_checked += local.drift_checked;
    r.drift_violations.extend(local.drift_violations);
    r.latencies_micros.extend(local.latencies_micros);
    Ok(())
}

/// Queries the daemon's `stats` op for the post-run drain check:
/// returns the parsed stats object.
pub fn final_stats(addr: &str) -> Result<Json, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    writer
        .write_all(b"{\"op\":\"stats\"}\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("recv: {e}"))?;
    json::parse(line.trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_cycle_the_mix() {
        let cfg = LoadConfig::default();
        let (line, _, _) = request_line(&cfg, 1);
        assert!(line.contains("\"workload\":\"rbtree\""), "{line}");
        let (line, shared, _) = request_line(&cfg, 0);
        assert!(line.contains("\"workload\":\"map\""), "{line}");
        assert!(shared, "session 0 is map and divisible by shared_every");
        let (line, _, resumable) = request_line(&cfg, 34);
        assert!(line.contains("\"fuel\":2000"), "{line}");
        assert!(line.contains("\"resumable\":true"), "{line}");
        assert!(line.contains("\"v\":2"), "{line}");
        assert!(resumable, "starved sessions are resumable by default");
    }

    #[test]
    fn starved_sessions_stay_plain_without_resume() {
        let cfg = LoadConfig {
            resume: false,
            ..LoadConfig::default()
        };
        let (line, _, resumable) = request_line(&cfg, 34);
        assert!(line.contains("\"fuel\":2000"), "{line}");
        assert!(!line.contains("resumable"), "{line}");
        assert!(!resumable);
    }

    #[test]
    fn resume_lines_carry_version_and_token() {
        let line = resume_line(7, (3 << 48) | 9, 500);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("resume"));
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("session").and_then(Json::as_u64), Some((3 << 48) | 9));
        assert_eq!(v.get("fuel").and_then(Json::as_u64), Some(500));
    }

    #[test]
    fn report_gates_on_drift_and_leaks() {
        let mut r = LoadReport {
            sessions: 2,
            ok: 2,
            ..LoadReport::default()
        };
        assert!(r.passed());
        r.leaked_blocks = 1;
        assert!(!r.passed());
        r.leaked_blocks = 0;
        r.drift_violations.push("x".into());
        assert!(!r.passed());
    }

    #[test]
    fn evictions_count_as_answered() {
        let r = LoadReport {
            sessions: 3,
            ok: 1,
            fuel_exhausted: 1,
            evicted_sessions: 1,
            suspended_legs: 5,
            resumed_sessions: 1,
            ..LoadReport::default()
        };
        assert!(r.passed(), "eviction is a clean terminal state");
        let r = LoadReport {
            sessions: 3,
            ok: 2,
            other_outcomes: 1,
            ..LoadReport::default()
        };
        assert!(!r.passed(), "unexplained outcomes still fail the gate");
    }

    #[test]
    fn percentiles_come_from_sorted_latencies() {
        let r = LoadReport {
            sessions: 4,
            ok: 4,
            latencies_micros: vec![40, 10, 30, 20],
            elapsed_secs: 1.0,
            ..LoadReport::default()
        };
        let doc = r.render_json();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("latency_p50_micros").and_then(Json::as_u64), Some(30));
        assert_eq!(v.get("latency_max_micros").and_then(Json::as_u64), Some(40));
    }
}
