//! Server-side caches: compiled programs keyed by source hash, and
//! frozen shared immutable inputs keyed by (program, size).
//!
//! The program cache is the reason a serving daemon beats a batch CLI
//! at all: the pipeline (parse → HM inference → passes → resource check
//! → backend) costs orders of magnitude more than one interpreted
//! session, so a thousand sessions of the same program must pay it
//! once. Entries are `Arc`-shared with every worker; a cache hit is a
//! lock + clone.
//!
//! The shared-input cache extends PR 4's share barrier across
//! *sessions* instead of threads: the first session that asks for a
//! workload's shared input builds it on a scratch heap, moves it
//! through [`perceus_runtime::Heap::mark_shared`] into an atomic-header
//! segment, and every later session (on any worker) attaches the
//! frozen segment and pays one atomic `dup` for its reference. The
//! cache itself holds the builder's original reference, so the count
//! never reaches zero while the entry lives — and because shared
//! blocks are immutable by construction (`mark_shared` rejects mutable
//! refs), no session can observe another session through it.

use crate::protocol::RunRequest;
use crate::relock;
use perceus_runtime::code::Compiled;
use perceus_runtime::{SharedHeap, Value};
use perceus_suite::{
    compile_borrowing, compile_workload, workload, ParallelSpec, Strategy, SuiteError,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a over the source text, strategy label, and borrow flag: the
/// program cache key. Deterministic across runs (ids in logs are
/// stable). The borrow-inferred (snapshot-read) build of a program is
/// a different executable, so it caches under a different key.
pub fn program_key(source: &str, strategy: Strategy, borrow: bool) -> u64 {
    let marker: &[u8] = if borrow { b"+borrow" } else { b"" };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source
        .bytes()
        .chain(strategy.label().bytes())
        .chain(marker.iter().copied())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A compiled program, shared by every worker that runs it.
pub struct CachedProgram {
    /// Cache key (source + strategy + borrow hash).
    pub key: u64,
    /// The borrow-agnostic key. Shared inputs are cached under *this*,
    /// so the borrowed and owned builds of one program attach the same
    /// frozen segment instead of freezing it twice.
    pub input_key: u64,
    /// Strategy the program was compiled under.
    pub strategy: Strategy,
    /// Whether the program was compiled under borrow inference (the
    /// snapshot-read variant).
    pub borrow: bool,
    /// The executable form.
    pub compiled: Compiled,
    /// The shared-input split, when the program is a registry workload
    /// that declares one.
    pub spec: Option<ParallelSpec>,
    /// Display name (workload name, or `source-<key>` for inline
    /// sources).
    pub name: String,
    /// Default problem size (registry test size, or 0 for inline
    /// sources).
    pub default_n: i64,
}

/// The compiled-program cache.
pub struct ProgramCache {
    map: Mutex<HashMap<u64, Arc<CachedProgram>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ProgramCache {
    /// An empty cache bounded at `capacity` programs.
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Resolves a run request to a compiled program, compiling on miss;
    /// the flag says whether this call hit the cache (reported per
    /// session on the wire). Compilation happens outside the lock, so
    /// concurrent misses on *different* programs compile in parallel
    /// (racing misses on the same program both compile; the first
    /// insert wins and the loser's work is dropped — correct because
    /// compilation is deterministic).
    pub fn resolve(&self, req: &RunRequest) -> Result<(Arc<CachedProgram>, bool), SuiteError> {
        let (source, name, spec, default_n) = match (&req.workload, &req.source) {
            (Some(w), _) => {
                let w = workload(w).ok_or_else(|| {
                    SuiteError::Audit(format!("unknown workload {w:?} (see `workloads()`)"))
                })?;
                (w.source, w.name.to_string(), w.parallel, w.test_n)
            }
            (None, Some(src)) => (src.as_str(), String::new(), None, 0),
            (None, None) => unreachable!("protocol validation requires one"),
        };
        let key = program_key(source, req.strategy, req.borrow);
        if let Some(hit) = relock(&self.map).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = if req.borrow {
            compile_borrowing(source)?
        } else {
            compile_workload(source, req.strategy)?
        };
        let name = if name.is_empty() {
            format!("source-{key:016x}")
        } else {
            name
        };
        let entry = Arc::new(CachedProgram {
            key,
            input_key: program_key(source, req.strategy, false),
            strategy: req.strategy,
            borrow: req.borrow,
            compiled,
            spec,
            name,
            default_n,
        });
        let mut map = relock(&self.map);
        if map.len() >= self.capacity && !map.contains_key(&key) {
            // The population is small (the suite plus ad-hoc sources);
            // arbitrary eviction keeps the bound without LRU bookkeeping.
            if let Some(&victim) = map.keys().next() {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok((Arc::clone(map.entry(key).or_insert(entry)), false))
    }

    /// `(programs, hits, misses, evictions)` for the stats endpoint.
    pub fn stats(&self) -> (usize, u64, u64, u64) {
        (
            relock(&self.map).len(),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// A frozen cross-session shared input.
pub struct SharedInput {
    /// The atomic-header segment holding the input.
    pub seg: Arc<SharedHeap>,
    /// The rewritten root (a shared-segment address). The cache's own
    /// reference keeps the count ≥ 1 for the entry's lifetime.
    pub root: Value,
    /// Live shared blocks right after the freeze — the drift baseline:
    /// a drained server must read exactly this many again.
    pub live_baseline: u64,
}

/// The shared-input cache, keyed by (program key, problem size).
#[derive(Default)]
pub struct SharedInputs {
    map: Mutex<HashMap<(u64, i64), Arc<SharedInput>>>,
}

impl SharedInputs {
    /// Looks up a frozen input.
    pub fn get(&self, key: u64, n: i64) -> Option<Arc<SharedInput>> {
        relock(&self.map).get(&(key, n)).cloned()
    }

    /// Inserts a freshly built input unless a racing builder won;
    /// returns the entry that ended up cached.
    pub fn insert(&self, key: u64, n: i64, input: SharedInput) -> Arc<SharedInput> {
        let mut map = relock(&self.map);
        Arc::clone(map.entry((key, n)).or_insert_with(|| Arc::new(input)))
    }

    /// `(entries, live_blocks_total, baseline_total)` for the stats
    /// endpoint. A drained server must read `live == baseline`: every
    /// session returned exactly the references it took.
    pub fn stats(&self) -> (usize, u64, u64) {
        let map = relock(&self.map);
        let live = map.values().map(|e| e.seg.live_blocks()).sum();
        let baseline = map.values().map(|e| e.live_baseline).sum();
        (map.len(), live, baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_req(workload: &str) -> RunRequest {
        RunRequest {
            id: 1,
            workload: Some(workload.into()),
            source: None,
            n: None,
            strategy: Strategy::Perceus,
            fuel: None,
            memory: None,
            shared: false,
            borrow: false,
            profile: false,
            resumable: false,
        }
    }

    #[test]
    fn second_resolve_is_a_hit() {
        let cache = ProgramCache::new(8);
        let (a, hit_a) = cache.resolve(&run_req("map")).unwrap();
        let (b, hit_b) = cache.resolve(&run_req("map")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!hit_a);
        assert!(hit_b);
        let (len, hits, misses, _) = cache.stats();
        assert_eq!((len, hits, misses), (1, 1, 1));
    }

    #[test]
    fn strategies_cache_separately() {
        let cache = ProgramCache::new(8);
        let (a, _) = cache.resolve(&run_req("map")).unwrap();
        let mut req = run_req("map");
        req.strategy = Strategy::Scoped;
        let (b, _) = cache.resolve(&req).unwrap();
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn borrowed_builds_cache_separately_but_share_the_input_key() {
        let cache = ProgramCache::new(8);
        let (owned, _) = cache.resolve(&run_req("map")).unwrap();
        let mut req = run_req("map");
        req.borrow = true;
        let (borrowed, _) = cache.resolve(&req).unwrap();
        assert_ne!(owned.key, borrowed.key, "different executables");
        assert!(borrowed.borrow);
        assert_eq!(
            owned.input_key, borrowed.input_key,
            "one frozen shared input serves both builds"
        );
    }

    #[test]
    fn capacity_is_bounded() {
        let cache = ProgramCache::new(1);
        cache.resolve(&run_req("map")).unwrap();
        cache.resolve(&run_req("rbtree")).unwrap();
        let (len, _, _, evictions) = cache.stats();
        assert_eq!(len, 1);
        assert_eq!(evictions, 1);
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let cache = ProgramCache::new(8);
        assert!(cache.resolve(&run_req("nope")).is_err());
    }
}
