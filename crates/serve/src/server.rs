//! The daemon: a TCP front end over a sharded pool of session workers.
//!
//! Architecture (see `docs/SERVING.md` for the full picture):
//!
//! ```text
//! client ──line──▶ connection reader ──Job──▶ worker shard queue (bounded)
//!                        │                          │ session on recycled heap
//! client ◀──line── connection writer ◀──String──────┘
//! ```
//!
//! Each accepted connection gets a reader thread (parses
//! newline-delimited requests, runs admission control, dispatches to a
//! worker shard round-robin) and a writer thread (serializes response
//! lines back; workers on different shards finish out of order, which
//! is why responses carry the client's `id`). Admission control is two
//! gates: a global in-flight cap, and the bounded per-shard queue —
//! when every shard's queue is full the session is turned away
//! immediately with `outcome: "busy"` (transient backpressure, retry
//! after backoff; `"rejected"` is reserved for permanently unservable
//! requests) instead of queuing without bound, so an overloaded server
//! degrades by fast refusal rather than by latency collapse.

use crate::cache::{ProgramCache, SharedInputs};
use crate::json::ObjBuilder;
use crate::protocol::{self, Outcome, ParseError, Request, DEFAULT_FUEL, DEFAULT_MEMORY_WORDS};
use crate::worker::{worker_loop, Aggregate, Job, ResumeJob, RunJob, ServeCtx};
use perceus_bench::counters::counter_values;
use perceus_bench::COUNTER_KEYS;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker shards (each owns one recycled heap).
    pub workers: usize,
    /// Bounded depth of each shard's job queue.
    pub queue_depth: usize,
    /// Global cap on admitted-but-unanswered sessions.
    pub max_inflight: u64,
    /// Per-session fuel when the request doesn't ask / hard ceiling.
    pub default_fuel: u64,
    pub max_fuel: u64,
    /// Per-session live words when the request doesn't ask / ceiling.
    pub default_memory: u64,
    pub max_memory: u64,
    /// Compiled-program cache capacity.
    pub cache_capacity: usize,
    /// Per-shard cap on parked (suspended) resumable sessions; parking
    /// past it evicts the shard's oldest.
    pub park_capacity: u64,
    /// Per-shard cap on the summed live words of parked sessions.
    pub park_memory_words: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 16);
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_depth: 128,
            max_inflight: (workers * 128) as u64,
            default_fuel: DEFAULT_FUEL,
            max_fuel: DEFAULT_FUEL,
            default_memory: DEFAULT_MEMORY_WORDS,
            max_memory: DEFAULT_MEMORY_WORDS,
            cache_capacity: 256,
            park_capacity: 64,
            park_memory_words: 32 << 20,
        }
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (tests read aggregates directly).
    pub fn ctx(&self) -> &Arc<ServeCtx> {
        &self.ctx
    }

    /// Raises the shutdown flag; workers and the acceptor drain out.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Shuts down and joins every daemon thread.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Parks until the shutdown flag rises — a client's
    /// `{"op":"shutdown"}` or another thread's [`ServerHandle::shutdown`]
    /// — then joins every daemon thread. Unlike [`ServerHandle::join`],
    /// this never initiates the shutdown itself: it is how the `serve`
    /// command keeps the daemon alive for its whole service life.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(25));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Starts the daemon: binds, spawns the worker pool and the acceptor,
/// returns immediately.
pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let ctx = Arc::new(ServeCtx {
        programs: ProgramCache::new(config.cache_capacity),
        inputs: SharedInputs::default(),
        aggregate: Mutex::new(Aggregate::default()),
        default_fuel: config.default_fuel.min(config.max_fuel),
        max_fuel: config.max_fuel,
        default_memory: config.default_memory.min(config.max_memory),
        max_memory: config.max_memory,
        park_capacity: config.park_capacity,
        park_memory_words: config.park_memory_words,
        inflight: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        parked: AtomicU64::new(0),
        parked_words: AtomicU64::new(0),
    });
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::new();
    let mut shards = Vec::with_capacity(config.workers);
    for shard in 0..config.workers.max(1) {
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        shards.push(tx);
        let ctx = Arc::clone(&ctx);
        let shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            worker_loop(shard, rx, ctx, shutdown)
        }));
    }

    let acceptor = {
        let ctx = Arc::clone(&ctx);
        let shutdown = Arc::clone(&shutdown);
        let shards = Arc::new(shards);
        let max_inflight = config.max_inflight;
        let workers = config.workers;
        std::thread::spawn(move || {
            let next_shard = Arc::new(AtomicUsize::new(0));
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let ctx = Arc::clone(&ctx);
                        let shutdown = Arc::clone(&shutdown);
                        let shards = Arc::clone(&shards);
                        let next_shard = Arc::clone(&next_shard);
                        conns.push(std::thread::spawn(move || {
                            connection(
                                stream,
                                ctx,
                                shutdown,
                                shards,
                                next_shard,
                                max_inflight,
                                workers,
                            );
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
                conns.retain(|c| !c.is_finished());
            }
            for c in conns {
                let _ = c.join();
            }
        })
    };
    threads.push(acceptor);

    Ok(ServerHandle {
        addr,
        ctx,
        shutdown,
        threads,
    })
}

/// One client connection: reader here, writer on a side thread.
#[allow(clippy::too_many_arguments)]
fn connection(
    stream: TcpStream,
    ctx: Arc<ServeCtx>,
    shutdown: Arc<AtomicBool>,
    shards: Arc<Vec<SyncSender<Job>>>,
    next_shard: Arc<AtomicUsize>,
    max_inflight: u64,
    workers: usize,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Responses (from workers and from the control plane) funnel
    // through one channel so lines never interleave on the socket.
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        while let Ok(line) = reply_rx.recv() {
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush())
                .is_err()
            {
                break;
            }
        }
        let _ = out.shutdown(std::net::Shutdown::Write);
    });

    // Requests are read as raw bytes and split on '\n' by hand. A
    // `BufReader::read_line` over a socket with a read timeout would
    // *truncate* a partially-received line when the timeout fires
    // mid-line (`append_to_string` discards the consumed bytes on
    // `Err`), silently corrupting any request split across a >100ms
    // gap — a slow client, or a large inline source spread over
    // delayed TCP segments. The timeout exists only so the shutdown
    // flag is polled; partial data survives in `buf` across timeouts.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut scanned = 0; // bytes before this hold no '\n'
    'conn: while !shutdown.load(Ordering::Relaxed) {
        while let Some(nl) = buf[scanned..].iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..scanned + nl + 1).collect();
            scanned = 0;
            let line = String::from_utf8_lossy(&line);
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if !dispatch(
                trimmed,
                &ctx,
                &shutdown,
                &shards,
                &next_shard,
                max_inflight,
                workers,
                &reply_tx,
            ) {
                break 'conn; // client-initiated shutdown
            }
        }
        scanned = buf.len();
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

/// Handles one request line on a connection. Returns `false` when the
/// client asked the daemon to shut down (the connection stops reading).
#[allow(clippy::too_many_arguments)]
fn dispatch(
    trimmed: &str,
    ctx: &Arc<ServeCtx>,
    shutdown: &AtomicBool,
    shards: &[SyncSender<Job>],
    next_shard: &AtomicUsize,
    max_inflight: u64,
    workers: usize,
    reply_tx: &mpsc::Sender<String>,
) -> bool {
    match protocol::parse_request(trimmed) {
        Err(ParseError::Bad(e)) => {
            let _ = reply_tx.send(protocol::protocol_error(&e));
        }
        Err(ParseError::Version { got, id }) => {
            let _ = reply_tx.send(protocol::version_error(got, id));
        }
        Ok(Request::Health) => {
            let _ = reply_tx.send(
                protocol::response()
                    .bool("ok", true)
                    .u64("workers", workers as u64)
                    .u64("inflight", ctx.inflight.load(Ordering::Relaxed))
                    .finish(),
            );
        }
        Ok(Request::Stats) => {
            let _ = reply_tx.send(render_stats(ctx, workers));
        }
        Ok(Request::Shutdown) => {
            let _ = reply_tx.send(protocol::response().bool("ok", true).finish());
            shutdown.store(true, Ordering::Relaxed);
            return false;
        }
        Ok(Request::Run(req)) => {
            // Gate 1: the global in-flight cap. Backpressure is
            // `busy` — transient by definition — never `rejected`,
            // which is reserved for requests that can *never* succeed.
            if ctx.inflight.fetch_add(1, Ordering::Relaxed) >= max_inflight {
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
                ctx.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(protocol::error_response(
                    req.id,
                    Outcome::Busy,
                    "busy",
                    "server at capacity (in-flight cap)",
                ));
                return true;
            }
            // Gate 2: a bounded shard queue, round-robin with failover
            // so one slow shard doesn't reject while others sit idle.
            let id = req.id;
            let mut job = Job::Run(RunJob {
                req: *req,
                reply: reply_tx.clone(),
            });
            let start = next_shard.fetch_add(1, Ordering::Relaxed);
            let mut admitted = false;
            for i in 0..shards.len() {
                let shard = &shards[(start + i) % shards.len()];
                match shard.try_send(job) {
                    Ok(()) => {
                        admitted = true;
                        break;
                    }
                    Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => {
                        job = j;
                    }
                }
            }
            if !admitted {
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
                ctx.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(protocol::error_response(
                    id,
                    Outcome::Busy,
                    "busy",
                    "server at capacity (all shard queues full)",
                ));
            }
        }
        Ok(Request::Resume(req)) => {
            // A resume has no shard freedom: the session token's high
            // bits name the one worker whose park table holds the
            // continuation, so there is no failover — that queue or
            // nothing.
            let shard_idx = (req.session >> 48) as usize;
            if shard_idx >= shards.len() {
                let _ = reply_tx.send(protocol::error_response(
                    req.id,
                    Outcome::Rejected,
                    "no-such-session",
                    &format!("session token {} names no worker shard", req.session),
                ));
                return true;
            }
            if ctx.inflight.fetch_add(1, Ordering::Relaxed) >= max_inflight {
                ctx.inflight.fetch_sub(1, Ordering::Relaxed);
                ctx.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(protocol::error_response(
                    req.id,
                    Outcome::Busy,
                    "busy",
                    "server at capacity (in-flight cap)",
                ));
                return true;
            }
            let id = req.id;
            let job = Job::Resume(ResumeJob {
                req,
                reply: reply_tx.clone(),
            });
            match shards[shard_idx].try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    ctx.inflight.fetch_sub(1, Ordering::Relaxed);
                    ctx.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = reply_tx.send(protocol::error_response(
                        id,
                        Outcome::Busy,
                        "busy",
                        "session's worker shard queue is full",
                    ));
                }
            }
        }
    }
    true
}

/// The `stats` response: lifecycle totals, cache effectiveness, shared
/// segments, and the merged gated counters of every session so far.
fn render_stats(ctx: &ServeCtx, workers: usize) -> String {
    let (programs, hits, misses, evictions) = ctx.programs.stats();
    let (inputs, shared_live, shared_baseline) = ctx.inputs.stats();
    let agg = crate::relock(&ctx.aggregate);
    let mut counters = ObjBuilder::new();
    for (key, value) in COUNTER_KEYS.iter().zip(counter_values(&agg.stats)) {
        counters = counters.u64(key, value);
    }
    protocol::response()
        .bool("ok", true)
        .u64("workers", workers as u64)
        .u64("sessions", agg.sessions)
        .u64("sessions_ok", agg.ok)
        .u64("fuel_exhausted", agg.fuel_exhausted)
        .u64("memory_limit", agg.memory_limit)
        .u64("compile_errors", agg.compile_errors)
        .u64("failed", agg.failed)
        .u64("suspended", agg.suspended)
        .u64("resumes", agg.resumes)
        .u64("evicted", agg.evicted)
        .u64("parked", ctx.parked.load(Ordering::Relaxed))
        .u64("parked_words", ctx.parked_words.load(Ordering::Relaxed))
        .u64("rejected", ctx.rejected.load(Ordering::Relaxed))
        .u64("inflight", ctx.inflight.load(Ordering::Relaxed))
        .u64("leaked_blocks", agg.leaked_blocks)
        .u64("reclaimed_blocks", agg.reclaimed_blocks)
        .u64("audit_failures", agg.audit_failures)
        .u64("shared_ref_drift", agg.shared_ref_drift)
        .u64("cache_programs", programs as u64)
        .u64("cache_hits", hits)
        .u64("cache_misses", misses)
        .u64("cache_evictions", evictions)
        .u64("shared_inputs", inputs as u64)
        .u64("shared_live_blocks", shared_live)
        .u64("shared_baseline_blocks", shared_baseline)
        .u64("atomic_ops", agg.stats.atomic_ops)
        .bool("profiled", agg.profile.is_some())
        .raw("counters", &counters.finish())
        .finish()
}
