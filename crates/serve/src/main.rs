//! The `perceus-serve` binary: `serve` runs the daemon, `loadtest`
//! drives one (spawning an in-process daemon unless `--addr` points at
//! a running one).

use perceus_bench::Baseline;
use perceus_serve::{loadtest, server, LoadConfig, ServeConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         perceus-serve serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n    \
           [--max-inflight N] [--fuel STEPS] [--memory WORDS]\n    \
           [--park-capacity N] [--park-memory WORDS]\n  \
         perceus-serve loadtest [--addr HOST:PORT] [--sessions N] [--connections N]\n    \
           [--window N] [--mix w1,w2,...] [--baseline FILE] [--no-starve]\n    \
           [--starve-every N] [--resume-fuel STEPS] [--no-resume]"
    );
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> Result<T, String> {
    let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: cannot parse {v:?}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _bin = args.next();
    match args.next().as_deref() {
        Some("serve") => match serve_cmd(args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("perceus-serve: {e}");
                ExitCode::FAILURE
            }
        },
        Some("loadtest") => match loadtest_cmd(args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("perceus-serve: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

fn serve_cmd(mut args: std::env::Args) -> Result<ExitCode, String> {
    let mut config = ServeConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => config.addr = parse_flag(&mut args, "--addr")?,
            "--workers" => config.workers = parse_flag(&mut args, "--workers")?,
            "--queue-depth" => config.queue_depth = parse_flag(&mut args, "--queue-depth")?,
            "--max-inflight" => config.max_inflight = parse_flag(&mut args, "--max-inflight")?,
            "--fuel" => {
                config.max_fuel = parse_flag(&mut args, "--fuel")?;
                config.default_fuel = config.max_fuel;
            }
            "--memory" => {
                config.max_memory = parse_flag(&mut args, "--memory")?;
                config.default_memory = config.max_memory;
            }
            "--park-capacity" => config.park_capacity = parse_flag(&mut args, "--park-capacity")?,
            "--park-memory" => config.park_memory_words = parse_flag(&mut args, "--park-memory")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let handle = server::start(config).map_err(|e| format!("bind failed: {e}"))?;
    println!("perceus-serve listening on {}", handle.addr());
    // The daemon runs until a client sends {"op":"shutdown"} (or the
    // process is killed). `wait` parks on the shutdown flag without
    // raising it — `join` here would stop the server immediately.
    handle.wait();
    Ok(ExitCode::SUCCESS)
}

fn loadtest_cmd(mut args: std::env::Args) -> Result<ExitCode, String> {
    let mut cfg = LoadConfig::default();
    let mut baseline_path: Option<String> = None;
    let mut addr: Option<String> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = Some(parse_flag(&mut args, "--addr")?),
            "--sessions" => cfg.sessions = parse_flag(&mut args, "--sessions")?,
            "--connections" => cfg.connections = parse_flag(&mut args, "--connections")?,
            "--window" => cfg.window = parse_flag(&mut args, "--window")?,
            "--mix" => {
                let mix: String = parse_flag(&mut args, "--mix")?;
                cfg.mix = mix.split(',').map(str::to_string).collect();
            }
            "--baseline" => baseline_path = Some(parse_flag(&mut args, "--baseline")?),
            "--no-starve" => cfg.starve_every = 0,
            "--starve-every" => cfg.starve_every = parse_flag(&mut args, "--starve-every")?,
            "--resume-fuel" => cfg.resume_fuel = parse_flag(&mut args, "--resume-fuel")?,
            "--no-resume" => cfg.resume = false,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if let Some(path) = baseline_path {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
        cfg.baseline = Some(Baseline::parse_json(&src).map_err(|e| format!("{path}: {e}"))?);
    }

    // Spawn an in-process daemon when none was given: sized so the
    // requested concurrency is admissible without rejection storms.
    let spawned = match &addr {
        Some(a) => {
            cfg.addr = a.clone();
            None
        }
        None => {
            let mut sc = ServeConfig::default();
            sc.max_inflight = (cfg.connections * cfg.window) as u64 + 64;
            // Shard queues must jointly cover the in-flight cap, or
            // gate 2 rejects sessions gate 1 already admitted.
            sc.queue_depth = sc
                .queue_depth
                .max(sc.max_inflight as usize / sc.workers.max(1) + cfg.window);
            let handle = server::start(sc).map_err(|e| format!("bind failed: {e}"))?;
            cfg.addr = handle.addr().to_string();
            Some(handle)
        }
    };

    let result = loadtest::run(&cfg);
    let stats = loadtest::final_stats(&cfg.addr);
    if let Some(handle) = spawned {
        handle.join();
    }
    let report = result?;
    println!("{}", report.render_json());
    let mut failed = !report.passed();
    match stats {
        Ok(stats) => {
            eprintln!("server stats: {stats:?}");
            let leaked = stats
                .get("leaked_blocks")
                .and_then(perceus_serve::json::Json::as_u64)
                .unwrap_or(u64::MAX);
            let audits = stats
                .get("audit_failures")
                .and_then(perceus_serve::json::Json::as_u64)
                .unwrap_or(u64::MAX);
            let live = stats
                .get("shared_live_blocks")
                .and_then(perceus_serve::json::Json::as_u64);
            let base = stats
                .get("shared_baseline_blocks")
                .and_then(perceus_serve::json::Json::as_u64);
            if leaked != 0 {
                eprintln!("FAIL: server reports {leaked} leaked blocks");
                failed = true;
            }
            if audits != 0 {
                eprintln!("FAIL: server reports {audits} audit failures");
                failed = true;
            }
            let parked = stats
                .get("parked")
                .and_then(perceus_serve::json::Json::as_u64)
                .unwrap_or(u64::MAX);
            if parked != 0 {
                eprintln!("FAIL: {parked} sessions still parked after the run drained");
                failed = true;
            }
            if live != base {
                eprintln!("FAIL: shared segments not drained to baseline ({live:?} != {base:?})");
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("FAIL: could not read final server stats: {e}");
            failed = true;
        }
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
