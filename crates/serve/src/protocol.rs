//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Responses to `run` requests carry the
//! client's `id`, and a connection may keep many runs in flight —
//! responses come back in *completion* order (sessions execute on
//! different workers), so the `id` is the correlation key. See
//! `docs/SERVING.md` for the full schema.
//!
//! Requests:
//!
//! ```text
//! {"op":"run","id":1,"workload":"rbtree","n":400}
//! {"op":"run","id":2,"source":"fun main(n: int): int { n }","n":7,
//!  "strategy":"perceus","fuel":1000000,"memory":200000,
//!  "shared":false,"profile":false}
//! {"op":"stats"}      {"op":"health"}      {"op":"shutdown"}
//! ```

use crate::json::{self, Json};
use perceus_suite::Strategy;

/// Default per-session fuel (machine steps) when neither the request
/// nor the server configuration says otherwise.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// Default per-session live-memory limit in words.
pub const DEFAULT_MEMORY_WORDS: u64 = 64 << 20;

/// A parsed `run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Client correlation id (echoed in the response).
    pub id: u64,
    /// Workload name from the suite registry, if given.
    pub workload: Option<String>,
    /// Inline surface-language source, if given (exclusive with
    /// `workload`).
    pub source: Option<String>,
    /// Problem size passed to `main` (or the consume function on the
    /// shared path). Defaults to the workload's test size.
    pub n: Option<i64>,
    /// Memory-management strategy (must be garbage-free; see
    /// [`crate::worker`]).
    pub strategy: Strategy,
    /// Per-session step budget (clamped to the server maximum).
    pub fuel: Option<u64>,
    /// Per-session live-word budget (clamped to the server maximum).
    pub memory: Option<u64>,
    /// Run over the cross-session shared immutable input (requires a
    /// workload with a [`perceus_suite::ParallelSpec`]).
    pub shared: bool,
    /// Attribute this session's heap events to functions and fold the
    /// profile into the server aggregate.
    pub profile: bool,
}

/// Any parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    Run(Box<RunRequest>),
    Stats,
    Health,
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line)?;
    let op = v.get("op").and_then(Json::as_str).unwrap_or("run");
    match op {
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        "run" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("run request needs a numeric \"id\"")?;
            let workload = v.get("workload").and_then(Json::as_str).map(str::to_string);
            let source = v.get("source").and_then(Json::as_str).map(str::to_string);
            if workload.is_none() && source.is_none() {
                return Err("run request needs \"workload\" or \"source\"".into());
            }
            if workload.is_some() && source.is_some() {
                return Err("run request takes \"workload\" or \"source\", not both".into());
            }
            let strategy = match v.get("strategy").and_then(Json::as_str) {
                None => Strategy::Perceus,
                Some(label) => Strategy::ALL
                    .into_iter()
                    .find(|s| s.label() == label)
                    .ok_or_else(|| format!("unknown strategy {label:?}"))?,
            };
            Ok(Request::Run(Box::new(RunRequest {
                id,
                workload,
                source,
                n: v.get("n").and_then(Json::as_i64),
                strategy,
                fuel: v.get("fuel").and_then(Json::as_u64),
                memory: v.get("memory").and_then(Json::as_u64),
                shared: v.get("shared").and_then(Json::as_bool).unwrap_or(false),
                profile: v.get("profile").and_then(Json::as_bool).unwrap_or(false),
            })))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// How a session ended (the terminal states of the lifecycle state
/// machine in `docs/SERVING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion; result and counters attached.
    Ok,
    /// The per-session step budget ran out mid-run.
    FuelExhausted,
    /// The per-session live-memory budget was exceeded mid-run.
    MemoryLimit,
    /// Compilation (front end, passes, resource check, backend) failed.
    CompileError,
    /// Any other runtime failure (abort, type error, …).
    Failed,
    /// Permanently unservable (non-rc strategy, workload without a
    /// shared spec): retrying the same request can never succeed.
    Rejected,
    /// Transient backpressure (in-flight cap hit, every shard queue
    /// full): the session never ran and a retry after backoff is
    /// expected to succeed.
    Busy,
}

impl Outcome {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::FuelExhausted => "fuel-exhausted",
            Outcome::MemoryLimit => "memory-limit",
            Outcome::CompileError => "compile-error",
            Outcome::Failed => "failed",
            Outcome::Rejected => "rejected",
            Outcome::Busy => "busy",
        }
    }
}

/// Renders an error response for a `run` request.
pub fn error_response(id: u64, outcome: Outcome, msg: &str) -> String {
    json::ObjBuilder::new()
        .u64("id", id)
        .bool("ok", false)
        .str("outcome", outcome.label())
        .str("error", msg)
        .finish()
}

/// Renders a protocol-level error (unparsable line, unknown op).
pub fn protocol_error(msg: &str) -> String {
    json::ObjBuilder::new()
        .bool("ok", false)
        .str("outcome", "bad-request")
        .str("error", msg)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_run() {
        let r = parse_request(r#"{"op":"run","id":3,"workload":"map"}"#).unwrap();
        let Request::Run(r) = r else { panic!() };
        assert_eq!(r.id, 3);
        assert_eq!(r.workload.as_deref(), Some("map"));
        assert_eq!(r.strategy, Strategy::Perceus);
        assert!(!r.shared);
    }

    #[test]
    fn run_needs_id_and_program() {
        assert!(parse_request(r#"{"op":"run","workload":"map"}"#).is_err());
        assert!(parse_request(r#"{"op":"run","id":1}"#).is_err());
        assert!(
            parse_request(r#"{"op":"run","id":1,"workload":"map","source":"x"}"#).is_err(),
            "workload and source are exclusive"
        );
    }

    #[test]
    fn strategy_labels_resolve() {
        let r = parse_request(r#"{"op":"run","id":1,"workload":"map","strategy":"scoped-rc"}"#)
            .unwrap();
        let Request::Run(r) = r else { panic!() };
        assert_eq!(r.strategy, Strategy::Scoped);
        assert!(parse_request(r#"{"op":"run","id":1,"workload":"map","strategy":"zap"}"#).is_err());
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }
}
