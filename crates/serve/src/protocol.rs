//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Responses to `run`/`resume` requests carry
//! the client's `id`, and a connection may keep many runs in flight —
//! responses come back in *completion* order (sessions execute on
//! different workers), so the `id` is the correlation key. See
//! `docs/SERVING.md` for the full schema.
//!
//! **Versioning.** Every response carries `"v":` [`PROTOCOL_VERSION`].
//! Requests may carry `"v"`; omitting it means version 1 (the
//! pre-resume protocol, which this daemon still speaks). A request
//! whose version falls outside [[`MIN_PROTOCOL_VERSION`],
//! [`PROTOCOL_VERSION`]] gets a structured `rejected` response with
//! code `unsupported-version` and the supported range — never a silent
//! best-effort parse.
//!
//! Requests:
//!
//! ```text
//! {"op":"run","id":1,"workload":"rbtree","n":400}
//! {"op":"run","v":2,"id":2,"source":"fun main(n: int): int { n }","n":7,
//!  "strategy":"perceus","fuel":1000000,"memory":200000,
//!  "shared":false,"borrow":false,"profile":false,"resumable":true}
//! {"op":"resume","v":2,"id":3,"session":281474976710657,"fuel":50000}
//! {"op":"stats"}      {"op":"health"}      {"op":"shutdown"}
//! ```

use crate::json::{self, Json, ObjBuilder};
use perceus_suite::Strategy;

/// Default per-session fuel (machine steps) when neither the request
/// nor the server configuration says otherwise.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// Default per-session live-memory limit in words.
pub const DEFAULT_MEMORY_WORDS: u64 = 64 << 20;

/// The protocol version this daemon speaks (and stamps on every
/// response). Version 2 added `resumable` runs, the `resume` op, the
/// `suspended` outcome, and stable error `code`s.
pub const PROTOCOL_VERSION: u64 = 2;

/// The oldest request version still accepted. Version-1 requests (no
/// `"v"` field) parse unchanged; their responses simply carry the new
/// fields.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// A parsed `run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Client correlation id (echoed in the response).
    pub id: u64,
    /// Workload name from the suite registry, if given.
    pub workload: Option<String>,
    /// Inline surface-language source, if given (exclusive with
    /// `workload`).
    pub source: Option<String>,
    /// Problem size passed to `main` (or the consume function on the
    /// shared path). Defaults to the workload's test size.
    pub n: Option<i64>,
    /// Memory-management strategy (must be garbage-free; see
    /// [`crate::worker`]).
    pub strategy: Strategy,
    /// Per-session step budget (clamped to the server maximum). For a
    /// resumable session this is the *per-leg* budget; running past it
    /// suspends instead of aborting.
    pub fuel: Option<u64>,
    /// Per-session live-word budget (clamped to the server maximum).
    pub memory: Option<u64>,
    /// Run over the cross-session shared immutable input (requires a
    /// workload with a [`perceus_suite::ParallelSpec`]).
    pub shared: bool,
    /// Borrow the shared input instead of minting a per-session
    /// reference: the consume function is compiled under borrow
    /// inference and the traversal pays **zero** atomic RMWs (snapshot
    /// reads — the worker heap's epoch pin carries liveness). Requires
    /// `shared:true`, the `perceus` strategy, and a non-resumable
    /// session; anything else gets a structured `rejected`.
    pub borrow: bool,
    /// Attribute this session's heap events to functions and fold the
    /// profile into the server aggregate.
    pub profile: bool,
    /// Suspend (outcome `suspended`, with a `session` token) instead of
    /// aborting when the fuel budget runs out; resume with
    /// `{"op":"resume","session":...}`. Requires a garbage-free (rc)
    /// strategy.
    pub resumable: bool,
}

/// A parsed `resume` request.
#[derive(Debug, Clone)]
pub struct ResumeRequest {
    /// Client correlation id (echoed in the response).
    pub id: u64,
    /// The session token from a `suspended` response.
    pub session: u64,
    /// Step budget for this leg (clamped to the server maximum;
    /// defaults to the server's default fuel).
    pub fuel: Option<u64>,
}

/// Any parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    Run(Box<RunRequest>),
    Resume(ResumeRequest),
    Stats,
    Health,
    Shutdown,
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Debug, Clone)]
pub enum ParseError {
    /// Malformed JSON, missing fields, unknown op — answered with a
    /// `bad-request` protocol error.
    Bad(String),
    /// The request declared a protocol version outside the supported
    /// range — answered with a structured `rejected` carrying the range
    /// (see [`version_error`]).
    Version {
        /// The version the request asked for.
        got: u64,
        /// The request's `id`, when one was present (so the client can
        /// correlate the rejection).
        id: Option<u64>,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Bad(m) => f.write_str(m),
            ParseError::Version { got, .. } => write!(
                f,
                "protocol version {got} unsupported (supported: {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
            ),
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let v = json::parse(line).map_err(ParseError::Bad)?;
    if let Some(ver) = v.get("v") {
        let ver = ver
            .as_u64()
            .ok_or_else(|| ParseError::Bad("\"v\" must be a number".into()))?;
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&ver) {
            return Err(ParseError::Version {
                got: ver,
                id: v.get("id").and_then(Json::as_u64),
            });
        }
    }
    let op = v.get("op").and_then(Json::as_str).unwrap_or("run");
    match op {
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        "resume" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| ParseError::Bad("resume request needs a numeric \"id\"".into()))?;
            let session = v.get("session").and_then(Json::as_u64).ok_or_else(|| {
                ParseError::Bad("resume request needs a numeric \"session\" token".into())
            })?;
            Ok(Request::Resume(ResumeRequest {
                id,
                session,
                fuel: v.get("fuel").and_then(Json::as_u64),
            }))
        }
        "run" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| ParseError::Bad("run request needs a numeric \"id\"".into()))?;
            let workload = v.get("workload").and_then(Json::as_str).map(str::to_string);
            let source = v.get("source").and_then(Json::as_str).map(str::to_string);
            if workload.is_none() && source.is_none() {
                return Err(ParseError::Bad(
                    "run request needs \"workload\" or \"source\"".into(),
                ));
            }
            if workload.is_some() && source.is_some() {
                return Err(ParseError::Bad(
                    "run request takes \"workload\" or \"source\", not both".into(),
                ));
            }
            let strategy = match v.get("strategy").and_then(Json::as_str) {
                None => Strategy::Perceus,
                Some(label) => Strategy::ALL
                    .into_iter()
                    .find(|s| s.label() == label)
                    .ok_or_else(|| ParseError::Bad(format!("unknown strategy {label:?}")))?,
            };
            Ok(Request::Run(Box::new(RunRequest {
                id,
                workload,
                source,
                n: v.get("n").and_then(Json::as_i64),
                strategy,
                fuel: v.get("fuel").and_then(Json::as_u64),
                memory: v.get("memory").and_then(Json::as_u64),
                shared: v.get("shared").and_then(Json::as_bool).unwrap_or(false),
                borrow: v.get("borrow").and_then(Json::as_bool).unwrap_or(false),
                profile: v.get("profile").and_then(Json::as_bool).unwrap_or(false),
                resumable: v.get("resumable").and_then(Json::as_bool).unwrap_or(false),
            })))
        }
        other => Err(ParseError::Bad(format!("unknown op {other:?}"))),
    }
}

/// How a session ended (the states of the lifecycle state machine in
/// `docs/SERVING.md`; all terminal except `Suspended`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion; result and counters attached.
    Ok,
    /// The per-session step budget ran out mid-run (non-resumable
    /// sessions, or a resumable session hitting the *cumulative*
    /// server fuel ceiling).
    FuelExhausted,
    /// The per-session live-memory budget was exceeded mid-run.
    MemoryLimit,
    /// Compilation (front end, passes, resource check, backend) failed.
    CompileError,
    /// Any other runtime failure (abort, type error, …).
    Failed,
    /// Permanently unservable (non-rc strategy, workload without a
    /// shared spec, unknown session token, unsupported protocol
    /// version): retrying the same request can never succeed.
    Rejected,
    /// Transient backpressure (in-flight cap hit, every shard queue
    /// full): the session never ran and a retry after backoff is
    /// expected to succeed.
    Busy,
    /// Not terminal: the session ran out of leg fuel at an auditable
    /// point and is parked; the response carries a `session` token for
    /// `{"op":"resume"}`. The session may later end `ok`, `failed`, …,
    /// or be evicted (a `rejected` with code `no-such-session` on the
    /// next resume).
    Suspended,
}

impl Outcome {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::FuelExhausted => "fuel-exhausted",
            Outcome::MemoryLimit => "memory-limit",
            Outcome::CompileError => "compile-error",
            Outcome::Failed => "failed",
            Outcome::Rejected => "rejected",
            Outcome::Busy => "busy",
            Outcome::Suspended => "suspended",
        }
    }
}

/// Starts a response object with the protocol version stamped — every
/// response the daemon emits goes through this.
pub fn response() -> ObjBuilder {
    ObjBuilder::new().u64("v", PROTOCOL_VERSION)
}

/// Renders an error response for a `run`/`resume` request. `code` is
/// the stable machine-readable error code — for runtime failures,
/// [`perceus_runtime::RuntimeError::code`] verbatim; for serving-layer
/// rejections, one of the codes documented in docs/SERVING.md
/// (`busy`, `shutdown`, `no-such-session`, `not-garbage-free`, …).
pub fn error_response(id: u64, outcome: Outcome, code: &str, msg: &str) -> String {
    response()
        .u64("id", id)
        .bool("ok", false)
        .str("outcome", outcome.label())
        .str("code", code)
        .str("error", msg)
        .finish()
}

/// Renders a protocol-level error (unparsable line, unknown op).
pub fn protocol_error(msg: &str) -> String {
    response()
        .bool("ok", false)
        .str("outcome", "bad-request")
        .str("code", "bad-request")
        .str("error", msg)
        .finish()
}

/// Renders the structured rejection for an unsupported protocol
/// version: outcome `rejected`, code `unsupported-version`, and the
/// supported range.
pub fn version_error(got: u64, id: Option<u64>) -> String {
    let mut b = response();
    if let Some(id) = id {
        b = b.u64("id", id);
    }
    b.bool("ok", false)
        .str("outcome", Outcome::Rejected.label())
        .str("code", "unsupported-version")
        .str(
            "error",
            &format!("protocol version {got} unsupported by this daemon"),
        )
        .u64("supported_min", MIN_PROTOCOL_VERSION)
        .u64("supported_max", PROTOCOL_VERSION)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_run() {
        let r = parse_request(r#"{"op":"run","id":3,"workload":"map"}"#).unwrap();
        let Request::Run(r) = r else { panic!() };
        assert_eq!(r.id, 3);
        assert_eq!(r.workload.as_deref(), Some("map"));
        assert_eq!(r.strategy, Strategy::Perceus);
        assert!(!r.shared);
        assert!(!r.borrow);
        assert!(!r.resumable);
    }

    #[test]
    fn run_needs_id_and_program() {
        assert!(parse_request(r#"{"op":"run","workload":"map"}"#).is_err());
        assert!(parse_request(r#"{"op":"run","id":1}"#).is_err());
        assert!(
            parse_request(r#"{"op":"run","id":1,"workload":"map","source":"x"}"#).is_err(),
            "workload and source are exclusive"
        );
    }

    #[test]
    fn borrow_flag_parses() {
        let line = r#"{"op":"run","id":1,"workload":"map","shared":true,"borrow":true}"#;
        let Request::Run(r) = parse_request(line).unwrap() else {
            panic!()
        };
        assert!(r.shared);
        assert!(r.borrow);
    }

    #[test]
    fn strategy_labels_resolve() {
        let r = parse_request(r#"{"op":"run","id":1,"workload":"map","strategy":"scoped-rc"}"#)
            .unwrap();
        let Request::Run(r) = r else { panic!() };
        assert_eq!(r.strategy, Strategy::Scoped);
        assert!(parse_request(r#"{"op":"run","id":1,"workload":"map","strategy":"zap"}"#).is_err());
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn resume_parses_and_validates() {
        let r = parse_request(r#"{"op":"resume","id":9,"session":77,"fuel":1000}"#).unwrap();
        let Request::Resume(r) = r else { panic!() };
        assert_eq!((r.id, r.session, r.fuel), (9, 77, Some(1000)));
        assert!(matches!(
            parse_request(r#"{"op":"resume","id":9}"#),
            Err(ParseError::Bad(_))
        ));
    }

    #[test]
    fn version_gate() {
        // Supported versions pass; absent means v1.
        assert!(parse_request(r#"{"op":"stats","v":1}"#).is_ok());
        assert!(parse_request(r#"{"op":"stats","v":2}"#).is_ok());
        assert!(parse_request(r#"{"op":"stats"}"#).is_ok());
        // Out-of-range versions carry the id for correlation.
        match parse_request(r#"{"op":"run","v":9,"id":4,"workload":"map"}"#) {
            Err(ParseError::Version { got, id }) => {
                assert_eq!((got, id), (9, Some(4)));
            }
            other => panic!("expected version error, got {other:?}"),
        }
        let resp = version_error(9, Some(4));
        assert!(resp.contains("\"supported_min\":1"), "{resp}");
        assert!(resp.contains("\"supported_max\":2"), "{resp}");
        assert!(resp.contains("\"code\":\"unsupported-version\""), "{resp}");
    }

    #[test]
    fn every_response_is_version_stamped() {
        for resp in [
            error_response(1, Outcome::Failed, "abort", "boom"),
            protocol_error("nope"),
            version_error(3, None),
            response().bool("ok", true).finish(),
        ] {
            assert!(resp.starts_with("{\"v\":2,"), "{resp}");
        }
    }
}
