//! `perceus-serve`: a multi-tenant serving harness over the Perceus
//! runtime.
//!
//! The daemon accepts compile+run sessions over newline-delimited JSON
//! on TCP, caches compiled programs by source hash, and executes
//! sessions on a sharded pool of workers that each *recycle one heap*
//! across tenants ([`perceus_runtime::Heap::reset`] between sessions).
//! The design leans on the paper's central properties:
//!
//! - **Garbage-freedom (Thm. 2/4)** makes per-session accounting
//!   exact: an ok session leaves zero live blocks, so "zero leaks
//!   across all tenants" is audited per session, not sampled; and the
//!   live-word memory limit is a deterministic sandbox, not a
//!   collector-timing artifact.
//! - **Generation-checked addresses** make cross-session slot reuse
//!   safe: a stale address from an evicted tenant fails
//!   deterministically instead of reading the next tenant's data.
//! - **The share barrier (§2.7.2-3)** extends to cross-*session*
//!   sharing: immutable inputs are frozen once into an atomic-header
//!   segment and every session on any worker pays one atomic `dup`.
//!
//! See `docs/SERVING.md` for the architecture and the session
//! lifecycle state machine, and `crate::loadtest` for the traffic
//! generator behind the `serve-smoke` CI gate.

pub mod cache;
pub mod json;
pub mod loadtest;
pub mod protocol;
pub mod server;
pub mod worker;

pub use cache::{CachedProgram, ProgramCache, SharedInputs};
pub use loadtest::{LoadConfig, LoadReport};
pub use protocol::{Outcome, Request, RunRequest};
pub use server::{start, ServeConfig, ServerHandle};

/// Locks a daemon-shared mutex, recovering the data if a panicking
/// thread poisoned it. Every mutex in the daemon guards plain counters
/// or maps whose critical sections are single-assignment small — they
/// are internally consistent at every instruction boundary — so poison
/// carries no integrity information here. Propagating it instead
/// (`.lock().unwrap()`) would turn one panicking session into a panic
/// in *every* subsequent session that touches the aggregate: the
/// daemon keeps accepting connections while every worker dies, which
/// clients observe as a hang, not an error.
pub(crate) fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
