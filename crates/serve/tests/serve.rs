//! End-to-end daemon tests: real TCP connections against an in-process
//! `perceus-serve`, covering the session lifecycle, heap recycling
//! across tenants, cross-session shared inputs, admission control, and
//! the loadtest drift gate against `BENCH_BASELINE.json`.

use perceus_serve::json::{self, Json};
use perceus_serve::loadtest::{self, LoadConfig};
use perceus_serve::server::{start, ServeConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn server(configure: impl FnOnce(&mut ServeConfig)) -> perceus_serve::ServerHandle {
    let mut config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    configure(&mut config);
    start(config).expect("daemon binds")
}

/// Sends every line, then reads one response per line; `run` responses
/// are keyed by id, control responses by arrival order under keys
/// ≥ `CONTROL_BASE`.
const CONTROL_BASE: u64 = 1 << 60;

fn roundtrip(addr: std::net::SocketAddr, lines: &[String]) -> HashMap<u64, Json> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    for line in lines {
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
    }
    let mut reader = BufReader::new(stream);
    let mut out = HashMap::new();
    let mut control = CONTROL_BASE;
    for _ in 0..lines.len() {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "early EOF");
        let v = json::parse(line.trim()).expect("valid response json");
        let key = v.get("id").and_then(Json::as_u64).unwrap_or_else(|| {
            control += 1;
            control
        });
        out.insert(key, v);
    }
    out
}

fn run_line(id: u64, workload: &str, extra: &str) -> String {
    format!(r#"{{"op":"run","id":{id},"workload":"{workload}"{extra}}}"#)
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key}: {v:?}"))
}

#[test]
fn sessions_compile_once_and_run_correct() {
    let h = server(|_| {});
    // The first map session completes before the second is sent, so
    // the second is a guaranteed program-cache hit (two pipelined
    // misses may legitimately race and both compile).
    let mut rs = roundtrip(h.addr(), &[run_line(1, "map", "")]);
    rs.extend(roundtrip(
        h.addr(),
        &[run_line(2, "map", ""), run_line(3, "rbtree", "")],
    ));
    for id in [1, 2, 3] {
        assert_eq!(
            field(&rs[&id], "outcome").as_str(),
            Some("ok"),
            "{:?}",
            rs[&id]
        );
        assert_eq!(field(&rs[&id], "leaked_blocks").as_u64(), Some(0));
        assert_eq!(field(&rs[&id], "audit_ok").as_bool(), Some(true));
    }
    // map at its test size n=500: sum of 1..=500.
    assert_eq!(field(&rs[&1], "value").as_str(), Some("125250"));
    assert_eq!(field(&rs[&2], "value").as_str(), Some("125250"));
    assert_eq!(field(&rs[&1], "cached").as_bool(), Some(false));
    assert_eq!(field(&rs[&2], "cached").as_bool(), Some(true), "{rs:?}");
    h.join();
}

#[test]
fn starved_tenant_is_reclaimed_and_next_tenant_matches_baseline() {
    // One worker: the starved session and its successor share a heap.
    let h = server(|c| c.workers = 1);
    let starved = roundtrip(h.addr(), &[run_line(1, "rbtree", r#","fuel":2000"#)]);
    let r = &starved[&1];
    assert_eq!(field(r, "outcome").as_str(), Some("fuel-exhausted"));
    assert!(field(r, "reclaimed_blocks").as_u64().unwrap() > 0);
    assert_eq!(field(r, "audit_ok").as_bool(), Some(true));

    // The next tenant on the same (recycled) heap reproduces the
    // committed counter baseline exactly, minus the placement trio.
    let baseline_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_BASELINE.json"
    ))
    .expect("baseline present");
    let baseline = perceus_bench::Baseline::parse_json(&baseline_src).unwrap();
    let row = baseline
        .workloads
        .iter()
        .find(|w| w.name == "rbtree")
        .unwrap();
    let after = roundtrip(h.addr(), &[run_line(2, "rbtree", "")]);
    let counters = field(&after[&2], "counters");
    for (key, expected) in &row.counters {
        if loadtest::PLACEMENT_COUNTERS.contains(&key.as_str()) {
            continue;
        }
        assert_eq!(
            counters.get(key).and_then(Json::as_u64),
            Some(*expected),
            "counter {key} drifted after a starved tenant"
        );
    }
    // And the recycling actually happened: the warm tenant found the
    // starved tenant's retired slots on the free lists.
    assert!(
        counters
            .get("freelist_hits")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    h.join();
}

#[test]
fn shared_inputs_are_frozen_once_and_isolated() {
    let h = server(|_| {});
    let rs = roundtrip(
        h.addr(),
        &[
            run_line(1, "map", r#","shared":true"#),
            run_line(2, "map", r#","shared":true"#),
            run_line(3, "refs", r#","shared":true"#),
            run_line(4, "refs", r#","shared":true"#),
        ],
    );
    for id in [1, 2, 3, 4] {
        assert_eq!(
            field(&rs[&id], "outcome").as_str(),
            Some("ok"),
            "{:?}",
            rs[&id]
        );
        assert_eq!(field(&rs[&id], "shared").as_bool(), Some(true));
        assert_eq!(field(&rs[&id], "leaked_blocks").as_u64(), Some(0));
    }
    // Isolation: sessions over the same frozen input agree exactly —
    // nothing one session did (all its work is private-heap) is
    // observable to the other, and the input itself is immutable by
    // the share barrier's construction.
    assert_eq!(
        field(&rs[&1], "value").as_str(),
        field(&rs[&2], "value").as_str()
    );
    assert_eq!(
        field(&rs[&3], "value").as_str(),
        field(&rs[&4], "value").as_str()
    );

    // The segments drained back to their freeze-time baseline: every
    // session returned exactly the reference it minted.
    let stats = roundtrip(h.addr(), &[r#"{"op":"stats"}"#.to_string()]);
    let stats = &stats[&(CONTROL_BASE + 1)];
    assert_eq!(field(stats, "shared_inputs").as_u64(), Some(2));
    assert_eq!(
        field(stats, "shared_live_blocks").as_u64(),
        field(stats, "shared_baseline_blocks").as_u64()
    );
    assert_eq!(field(stats, "leaked_blocks").as_u64(), Some(0));
    assert_eq!(field(stats, "audit_failures").as_u64(), Some(0));
    h.join();
}

#[test]
fn admission_control_turns_away_at_capacity_as_busy() {
    let h = server(|c| c.max_inflight = 0);
    let rs = roundtrip(h.addr(), &[run_line(1, "map", "")]);
    // Capacity is transient backpressure: the client may retry.
    assert_eq!(field(&rs[&1], "outcome").as_str(), Some("busy"));
    let stats = roundtrip(h.addr(), &[r#"{"op":"stats"}"#.to_string()]);
    assert_eq!(
        field(&stats[&(CONTROL_BASE + 1)], "rejected").as_u64(),
        Some(1)
    );
    h.join();
}

#[test]
fn permanently_unservable_requests_are_rejected_not_busy() {
    let h = server(|_| {});
    // A non-garbage-free strategy can never be served: retrying is
    // pointless, so the outcome must be the terminal "rejected", not
    // the retryable "busy".
    let rs = roundtrip(
        h.addr(),
        &[run_line(1, "map", r#","strategy":"tracing-gc""#)],
    );
    assert_eq!(
        field(&rs[&1], "outcome").as_str(),
        Some("rejected"),
        "{:?}",
        rs[&1]
    );
    h.join();
}

#[test]
fn slow_clients_survive_read_timeouts_mid_line() {
    let h = server(|_| {});
    let mut stream = TcpStream::connect(h.addr()).expect("connect");
    let line = run_line(5, "map", "");
    let (head, tail) = line.as_bytes().split_at(line.len() / 2);
    // Stall longer than the server's 100ms read-poll interval with a
    // request line half-written: the reader must keep the partial
    // bytes intact across the timeout.
    stream.write_all(head).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(350));
    stream.write_all(tail).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    assert!(reader.read_line(&mut resp).unwrap() > 0, "early EOF");
    let v = json::parse(resp.trim()).expect("valid response json");
    assert_eq!(field(&v, "id").as_u64(), Some(5));
    assert_eq!(field(&v, "outcome").as_str(), Some("ok"), "{v:?}");
    h.join();
}

#[test]
fn wait_parks_until_a_client_requests_shutdown() {
    let h = server(|_| {});
    let addr = h.addr();
    let driver = std::thread::spawn(move || {
        // If wait() returned on its own (the old join() behaviour shut
        // the daemon down ~immediately), this session would fail to
        // connect or get no reply — failing the test from this thread.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let rs = roundtrip(addr, &[run_line(1, "map", "")]);
        assert_eq!(field(&rs[&1], "outcome").as_str(), Some("ok"));
        let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
    });
    // Parks until the driver's shutdown request raises the flag.
    h.wait();
    driver.join().expect("driver thread succeeds");
}

#[test]
fn health_shutdown_and_bad_requests() {
    let h = server(|_| {});
    let rs = roundtrip(
        h.addr(),
        &[
            r#"{"op":"health"}"#.to_string(),
            "this is not json".to_string(),
            r#"{"op":"run","id":9,"workload":"no-such-workload"}"#.to_string(),
        ],
    );
    let by_outcome: Vec<&str> = rs
        .values()
        .filter_map(|v| v.get("outcome").and_then(Json::as_str))
        .collect();
    assert!(by_outcome.contains(&"bad-request"), "{rs:?}");
    assert_eq!(
        field(&rs[&9], "outcome").as_str(),
        Some("compile-error"),
        "{rs:?}"
    );
    let _ = roundtrip(h.addr(), &[r#"{"op":"shutdown"}"#.to_string()]);
    // The flag is up; join must complete rather than hang.
    h.join();
}

#[test]
fn malformed_requests_get_structured_answers_and_the_connection_survives() {
    let h = server(|_| {});
    let rs = roundtrip(
        h.addr(),
        &[
            // Truncated JSON, a non-JSON line, an unknown op, and a run
            // without an id: each must come back as a structured
            // `bad-request`, not a dropped connection or a panic.
            r#"{"op":"run","id":"#.to_string(),
            "garbage over the wire".to_string(),
            r#"{"op":"frobnicate","id":1}"#.to_string(),
            r#"{"op":"run","workload":"map"}"#.to_string(),
            // Parsable but permanently unservable: borrow without
            // shared gets a terminal `rejected` with a stable code.
            r#"{"op":"run","id":3,"workload":"map","borrow":true}"#.to_string(),
            // And the same connection still serves a healthy session.
            run_line(4, "map", ""),
        ],
    );
    let bad_requests = rs
        .values()
        .filter(|v| v.get("outcome").and_then(Json::as_str) == Some("bad-request"))
        .count();
    assert_eq!(bad_requests, 4, "{rs:?}");
    assert_eq!(
        field(&rs[&3], "outcome").as_str(),
        Some("rejected"),
        "{rs:?}"
    );
    assert_eq!(
        field(&rs[&3], "code").as_str(),
        Some("borrow-without-shared")
    );
    assert_eq!(field(&rs[&4], "outcome").as_str(), Some("ok"), "{rs:?}");
    h.join();
}

#[test]
fn borrowed_snapshot_sessions_pay_zero_atomics_over_tcp() {
    let h = server(|_| {});
    // Freeze the input with an owned session first (so the borrowed
    // session below is deterministic about which build froze it), then
    // contrast the two read paths.
    let owned = roundtrip(h.addr(), &[run_line(1, "map", r#","shared":true"#)]);
    let borrowed = roundtrip(
        h.addr(),
        &[run_line(2, "map", r#","shared":true,"borrow":true"#)],
    );
    assert_eq!(field(&owned[&1], "outcome").as_str(), Some("ok"));
    assert_eq!(
        field(&borrowed[&2], "outcome").as_str(),
        Some("ok"),
        "{borrowed:?}"
    );
    assert!(
        field(&owned[&1], "atomic_ops").as_u64().unwrap() > 0,
        "owned shared reads pay per-visit RMWs"
    );
    assert_eq!(field(&borrowed[&2], "borrow").as_bool(), Some(true));
    assert_eq!(
        field(&borrowed[&2], "atomic_ops").as_u64(),
        Some(0),
        "the snapshot read path is RMW-free end to end"
    );
    assert_eq!(field(&borrowed[&2], "shared_ref_drift").as_u64(), Some(0));
    assert_eq!(field(&borrowed[&2], "leaked_blocks").as_u64(), Some(0));
    assert_eq!(
        field(&owned[&1], "value").as_str(),
        field(&borrowed[&2], "value").as_str(),
        "both read paths agree on the result"
    );
    // One frozen input served both builds (the borrow-agnostic input
    // key), and the segment sits exactly at its freeze-time baseline.
    let stats = roundtrip(h.addr(), &[r#"{"op":"stats"}"#.to_string()]);
    let stats = &stats[&(CONTROL_BASE + 1)];
    assert_eq!(field(stats, "shared_inputs").as_u64(), Some(1));
    assert_eq!(
        field(stats, "shared_live_blocks").as_u64(),
        field(stats, "shared_baseline_blocks").as_u64()
    );
    assert_eq!(field(stats, "audit_failures").as_u64(), Some(0));
    h.join();
}

#[test]
fn loadtest_sustains_concurrent_mixed_sessions_with_zero_drift() {
    let h = server(|c| {
        c.max_inflight = 4096;
        c.queue_depth = 256;
    });
    let baseline_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_BASELINE.json"
    ))
    .expect("baseline present");
    let cfg = LoadConfig {
        addr: h.addr().to_string(),
        sessions: 240,
        connections: 6,
        window: 20,
        baseline: Some(perceus_bench::Baseline::parse_json(&baseline_src).unwrap()),
        ..LoadConfig::default()
    };
    let report = loadtest::run(&cfg).expect("loadtest runs");
    assert!(
        report.passed(),
        "drift={:?} leaks={} audits={} other={}",
        report.drift_violations,
        report.leaked_blocks,
        report.audit_violations,
        report.other_outcomes
    );
    assert!(report.drift_checked > 0, "the gate must actually check");
    // With resume on (the default), starved sessions suspend instead of
    // aborting, and each must reach a clean terminal state.
    assert!(
        report.suspended_legs > 0,
        "the mix must exercise suspension"
    );
    assert!(
        report.resumed_sessions + report.evicted_sessions > 0,
        "starved sessions must resume to completion or evict cleanly"
    );
    assert!(report.shared_sessions > 0, "the mix must exercise sharing");
    assert!(report.cache_hit_sessions > 0);

    let stats = loadtest::final_stats(&cfg.addr).unwrap();
    assert_eq!(field(&stats, "leaked_blocks").as_u64(), Some(0));
    assert_eq!(field(&stats, "audit_failures").as_u64(), Some(0));
    assert_eq!(field(&stats, "parked").as_u64(), Some(0), "drained");
    assert_eq!(
        field(&stats, "shared_live_blocks").as_u64(),
        field(&stats, "shared_baseline_blocks").as_u64()
    );
    h.join();
}

#[test]
fn loadtest_without_resume_still_exercises_aborts() {
    let h = server(|c| {
        c.max_inflight = 1024;
        c.queue_depth = 128;
    });
    let cfg = LoadConfig {
        addr: h.addr().to_string(),
        sessions: 93,
        connections: 3,
        window: 8,
        resume: false,
        ..LoadConfig::default()
    };
    let report = loadtest::run(&cfg).expect("loadtest runs");
    assert!(report.passed(), "other={}", report.other_outcomes);
    assert!(report.fuel_exhausted > 0, "starved sessions abort (v1 mix)");
    assert_eq!(report.suspended_legs, 0);
    h.join();
}

/// Drives one resumable session to a terminal response, resuming every
/// time it suspends; returns `(final_response, resume_legs)`.
fn resume_to_terminal(
    addr: std::net::SocketAddr,
    id: u64,
    first: String,
    resume_fuel: u64,
) -> (Json, u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = first;
    let mut legs = 0u64;
    loop {
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        let mut resp = String::new();
        assert!(reader.read_line(&mut resp).unwrap() > 0, "early EOF");
        let v = json::parse(resp.trim()).expect("valid response json");
        assert_eq!(field(&v, "v").as_u64(), Some(2), "{v:?}");
        if field(&v, "outcome").as_str() != Some("suspended") {
            return (v, legs);
        }
        // Suspension points are audited: Perceus' garbage-free
        // invariant holds mid-execution, not just at session exit.
        assert_eq!(field(&v, "audit_ok").as_bool(), Some(true), "{v:?}");
        let token = field(&v, "session").as_u64().expect("session token");
        legs += 1;
        line =
            format!(r#"{{"op":"resume","v":2,"id":{id},"session":{token},"fuel":{resume_fuel}}}"#);
    }
}

#[test]
fn suspended_session_resumes_to_baseline_counters_over_tcp() {
    let h = server(|c| c.workers = 1);
    let (v, legs) = resume_to_terminal(
        h.addr(),
        41,
        run_line(41, "rbtree", r#","v":2,"fuel":2000,"resumable":true"#),
        2000,
    );
    assert_eq!(field(&v, "outcome").as_str(), Some("ok"), "{v:?}");
    assert!(legs > 0, "2000 fuel cannot finish rbtree in one leg");
    assert_eq!(field(&v, "resumes").as_u64(), Some(legs));
    assert_eq!(field(&v, "leaked_blocks").as_u64(), Some(0));
    assert_eq!(field(&v, "audit_ok").as_bool(), Some(true));

    // The interrupted execution reproduces the committed baseline
    // bit-for-bit — all counters, placement trio included, because a
    // resumable session runs on its own fresh heap exactly like the
    // cold benchmark run did.
    let baseline_src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_BASELINE.json"
    ))
    .expect("baseline present");
    let baseline = perceus_bench::Baseline::parse_json(&baseline_src).unwrap();
    let row = baseline
        .workloads
        .iter()
        .find(|w| w.name == "rbtree")
        .unwrap();
    let counters = field(&v, "counters");
    for (key, expected) in &row.counters {
        assert_eq!(
            counters.get(key).and_then(Json::as_u64),
            Some(*expected),
            "counter {key} drifted across {legs} suspensions"
        );
    }
    h.join();
}

#[test]
fn resume_of_unknown_or_evicted_session_is_rejected() {
    // park_capacity 1: parking a second session evicts the first.
    let h = server(|c| {
        c.workers = 1;
        c.park_capacity = 1;
    });
    let a = roundtrip(
        h.addr(),
        &[run_line(
            1,
            "rbtree",
            r#","v":2,"fuel":2000,"resumable":true"#,
        )],
    );
    assert_eq!(field(&a[&1], "outcome").as_str(), Some("suspended"));
    let tok_a = field(&a[&1], "session").as_u64().unwrap();

    let b = roundtrip(
        h.addr(),
        &[run_line(
            2,
            "msort",
            r#","v":2,"fuel":2000,"resumable":true"#,
        )],
    );
    assert_eq!(field(&b[&2], "outcome").as_str(), Some("suspended"));
    let tok_b = field(&b[&2], "session").as_u64().unwrap();

    // A was evicted to make room for B: its token is now dead, and the
    // rejection is terminal (code no-such-session), not retryable busy.
    let r = roundtrip(
        h.addr(),
        &[format!(
            r#"{{"op":"resume","v":2,"id":3,"session":{tok_a},"fuel":2000}}"#
        )],
    );
    assert_eq!(field(&r[&3], "outcome").as_str(), Some("rejected"), "{r:?}");
    assert_eq!(field(&r[&3], "code").as_str(), Some("no-such-session"));

    // B is still parked and runs to completion; the eviction repaid A's
    // heap, so the drained server reports nothing parked and no leaks.
    let (v, _) = resume_to_terminal(
        h.addr(),
        4,
        format!(r#"{{"op":"resume","v":2,"id":4,"session":{tok_b},"fuel":2000}}"#),
        2000,
    );
    assert_eq!(field(&v, "outcome").as_str(), Some("ok"), "{v:?}");
    let stats = roundtrip(h.addr(), &[r#"{"op":"stats"}"#.to_string()]);
    let stats = &stats[&(CONTROL_BASE + 1)];
    assert_eq!(field(stats, "parked").as_u64(), Some(0));
    assert_eq!(field(stats, "evicted").as_u64(), Some(1));
    assert_eq!(field(stats, "leaked_blocks").as_u64(), Some(0));
    assert_eq!(field(stats, "audit_failures").as_u64(), Some(0));
    h.join();
}

#[test]
fn unsupported_protocol_version_is_rejected_with_range() {
    let h = server(|_| {});
    let rs = roundtrip(
        h.addr(),
        &[r#"{"op":"run","v":9,"id":7,"workload":"map"}"#.to_string()],
    );
    let r = &rs[&7];
    assert_eq!(field(r, "outcome").as_str(), Some("rejected"), "{r:?}");
    assert_eq!(field(r, "code").as_str(), Some("unsupported-version"));
    assert_eq!(field(r, "supported_min").as_u64(), Some(1));
    assert_eq!(field(r, "supported_max").as_u64(), Some(2));
    // Version 1 requests (no "v" field) still work unchanged, and every
    // response carries the server's version stamp.
    let ok = roundtrip(h.addr(), &[run_line(8, "map", "")]);
    assert_eq!(field(&ok[&8], "outcome").as_str(), Some("ok"));
    assert_eq!(field(&ok[&8], "v").as_u64(), Some(2));
    h.join();
}
