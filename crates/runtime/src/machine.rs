//! The abstract machine: an environment-based, tail-call-safe
//! interpreter for compiled programs, implementing the reference-counted
//! heap semantics of Fig. 7:
//!
//! * values flow by move — ownership transfers with the value; only the
//!   explicit `dup`/`drop` instructions emitted by the insertion passes
//!   touch reference counts (the machine mirrors substitution semantics);
//! * closure application performs rule (appᵣ): retain the captured
//!   environment, release the closure, jump to the body;
//! * `match` *borrows* its scrutinee and binds fields without retaining —
//!   the compiled arm code contains the binder `dup`s and the scrutinee
//!   `drop` (the Fig. 1b form);
//! * tail calls never grow the continuation stack, which is what makes
//!   the FBIP traversals of §2.6 run in constant stack space.
//!
//! The same machine executes all memory-management modes; in GC mode it
//! additionally triggers the mark–sweep collector of [`crate::gc`] at
//! allocation points, enumerating its own environments as roots.

use crate::code::{Atom, Compiled, RArm, RExpr, Slot};
use crate::error::RuntimeError;
use crate::gc::{Collector, GcConfig};
use crate::heap::{BlockTag, Heap, HeapConfig, ReclaimMode};
use crate::profile::FrameKind;
use crate::value::Value;
use perceus_core::ir::expr::PrimOp;
use perceus_core::ir::{CtorId, FunId, TypeTable};
use perceus_core::passes::Validation;
use std::fmt;

/// Machine configuration.
///
/// Built with the `with_*` methods (the [`perceus_core::passes::PassConfig`]
/// pattern: private fields, chainable setters, accessors), so growing a
/// new knob — per-resume budgets, say — is never a breaking
/// struct-literal change for downstream callers:
///
/// ```
/// use perceus_runtime::RunConfig;
/// let config = RunConfig::new().with_step_limit(Some(10_000)).with_profile(true);
/// assert_eq!(config.step_limit(), Some(10_000));
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    step_limit: Option<u64>,
    memory_limit_words: Option<u64>,
    gc: Option<GcConfig>,
    audit_every: Option<u64>,
    trace_capacity: Option<usize>,
    heap_recycle: bool,
    validation: Validation,
    profile: bool,
}

impl RunConfig {
    /// The default configuration: no limits, allocator recycling on,
    /// default validation, no tracing or profiling.
    pub fn new() -> Self {
        RunConfig {
            step_limit: None,
            memory_limit_words: None,
            gc: None,
            audit_every: None,
            trace_capacity: None,
            heap_recycle: true,
            validation: Validation::default(),
            profile: false,
        }
    }

    /// Abort with [`RuntimeError::StepLimit`] after this many steps
    /// (`None` = unlimited). Steps are counted in
    /// [`crate::heap::Stats::steps`], which survives suspension — so for
    /// a resumable [`Execution`] this is the *cumulative* fuel ceiling
    /// across all resume legs, while the per-leg budget passed to
    /// [`Execution::run`] only suspends.
    pub fn with_step_limit(mut self, limit: Option<u64>) -> Self {
        self.step_limit = limit;
        self
    }

    /// Abort with [`RuntimeError::MemoryLimit`] once the live heap
    /// exceeds this many words (`None` = unlimited). Enforced in the
    /// machine loop against `Stats::live_words`; under a garbage-free
    /// strategy that quantity is exactly the reachable data, so the
    /// limit is deterministic (the same program at the same size always
    /// hits it at the same step — or never).
    pub fn with_memory_limit_words(mut self, limit: Option<u64>) -> Self {
        self.memory_limit_words = limit;
        self
    }

    /// Collector policy (GC mode only; `None` uses the default).
    pub fn with_gc(mut self, gc: Option<GcConfig>) -> Self {
        self.gc = gc;
        self
    }

    /// Run the garbage-free/soundness auditor every N steps (expensive;
    /// for tests). See [`crate::audit`].
    pub fn with_audit_every(mut self, every: Option<u64>) -> Self {
        self.audit_every = every;
        self
    }

    /// Retain the most recent N reference-count events for debugging
    /// (see [`crate::trace`]); `None` disables tracing.
    pub fn with_trace_capacity(mut self, capacity: Option<usize>) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Serve allocations from the heap's size-class free lists (on by
    /// default); off restores the free-and-reallocate discipline for
    /// the allocator ablation.
    pub fn with_heap_recycle(mut self, recycle: bool) -> Self {
        self.heap_recycle = recycle;
        self
    }

    /// Runtime invariant-check policy (see
    /// [`crate::heap::HeapConfig::validation`]). `Full` makes release
    /// builds also verify reuse-specialization skip masks.
    pub fn with_validation(mut self, validation: Validation) -> Self {
        self.validation = validation;
        self
    }

    /// Attribute every heap/RC event to the executing function (see
    /// [`crate::profile`]). Off by default: the disabled profiler costs
    /// one predictable branch per heap entry point and nothing else.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// The step (fuel) ceiling, if any.
    pub fn step_limit(&self) -> Option<u64> {
        self.step_limit
    }

    /// The live-heap ceiling in words, if any.
    pub fn memory_limit_words(&self) -> Option<u64> {
        self.memory_limit_words
    }

    /// The collector policy override, if any.
    pub fn gc(&self) -> Option<GcConfig> {
        self.gc
    }

    /// The audit cadence, if any.
    pub fn audit_every(&self) -> Option<u64> {
        self.audit_every
    }

    /// The rc-trace ring capacity, if any.
    pub fn trace_capacity(&self) -> Option<usize> {
        self.trace_capacity
    }

    /// Whether allocations are served from size-class free lists.
    pub fn heap_recycle(&self) -> bool {
        self.heap_recycle
    }

    /// The runtime invariant-check policy.
    pub fn validation(&self) -> Validation {
        self.validation
    }

    /// Whether the per-function profiler is on.
    pub fn profile(&self) -> bool {
        self.profile
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A pending continuation.
pub(crate) enum Frame<'p> {
    /// Return from a function call: restore `env`, optionally store the
    /// value, optionally continue (otherwise keep returning).
    Call {
        env: Vec<Value>,
        dst: Option<Slot>,
        cont: Option<&'p RExpr>,
    },
    /// A compound let-rhs finished: store into the current env.
    Local { dst: Slot, cont: &'p RExpr },
    /// A compound statement finished: discard the value.
    Discard { cont: &'p RExpr },
}

/// The abstract machine.
pub struct Machine<'p> {
    code: &'p Compiled,
    /// The heap (public so tests and the harness can read statistics).
    pub heap: Heap,
    pub(crate) frames: Vec<Frame<'p>>,
    pub(crate) env: Vec<Value>,
    output: Vec<i64>,
    collector: Option<Collector>,
    config: RunConfig,
    /// Recycled environment vectors (a call would otherwise allocate a
    /// fresh `Vec` per frame; the pool makes calls allocation-free).
    env_pool: Vec<Vec<Value>>,
    /// Number of garbage-free audits run (see `RunConfig::audit_every`).
    audits: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `code` with the given reclamation mode.
    pub fn new(code: &'p Compiled, mode: ReclaimMode, config: RunConfig) -> Self {
        let collector = match mode {
            ReclaimMode::Gc => Some(Collector::new(config.gc.unwrap_or_default())),
            _ => None,
        };
        let mut heap = Heap::with_config(
            mode,
            HeapConfig {
                recycle: config.heap_recycle,
                validation: config.validation,
            },
        );
        if let Some(cap) = config.trace_capacity {
            heap.enable_trace(cap);
        }
        if config.profile {
            heap.enable_profile();
        }
        Machine {
            code,
            heap,
            frames: Vec::new(),
            env: Vec::new(),
            output: Vec::new(),
            collector,
            config,
            env_pool: Vec::new(),
            audits: 0,
        }
    }

    /// Creates a machine over an *existing* heap — the serving-harness
    /// entry point, where a long-lived worker recycles one heap across
    /// thousands of sessions ([`Heap::reset`] between them) so each
    /// session's allocations hit the previous sessions' warm free
    /// lists. The heap keeps its own reclaim mode and allocator policy;
    /// the run configuration contributes the per-session limits and
    /// turns tracing/profiling on if the heap doesn't have them yet.
    ///
    /// The machine holds no state besides the heap and this call's
    /// fresh frames/environment, so a `with_heap` → run →
    /// [`Machine::into_heap`] round trip is fully reentrant: any number
    /// of sequential sessions can share the heap with no bleed-through
    /// (and the generation check catches a leaked address from a
    /// previous tenant deterministically).
    pub fn with_heap(code: &'p Compiled, mut heap: Heap, config: RunConfig) -> Self {
        let collector = match heap.mode() {
            ReclaimMode::Gc => Some(Collector::new(config.gc.unwrap_or_default())),
            _ => None,
        };
        if let Some(cap) = config.trace_capacity {
            if heap.trace().is_none() {
                heap.enable_trace(cap);
            }
        }
        if config.profile && heap.profile().is_none() {
            heap.enable_profile();
        }
        Machine {
            code,
            heap,
            frames: Vec::new(),
            env: Vec::new(),
            output: Vec::new(),
            collector,
            config,
            env_pool: Vec::new(),
            audits: 0,
        }
    }

    /// Consumes the machine and returns its heap (the serving worker
    /// takes it back after a session to reset and reuse it).
    pub fn into_heap(self) -> Heap {
        self.heap
    }

    /// How many in-flight garbage-free audits ran (each one checked
    /// reachability and count adequacy of the whole heap). Zero unless
    /// [`RunConfig::audit_every`] was set.
    pub fn audits_run(&self) -> u64 {
        self.audits
    }

    fn take_env(&mut self) -> Vec<Value> {
        self.env_pool.pop().unwrap_or_default()
    }

    fn recycle_env(&mut self, mut env: Vec<Value>) {
        if self.env_pool.len() < 64 {
            env.clear();
            self.env_pool.push(env);
        }
    }

    /// Builds a callee environment from argument atoms (read against the
    /// *current* environment), padded to `nslots`.
    fn build_env(&mut self, args: &[Atom], nslots: usize) -> Vec<Value> {
        let mut env = self.take_env();
        for a in args {
            env.push(self.read(*a));
        }
        env.resize(nslots, Value::Unit);
        env
    }

    /// The integers printed by `println` during the run.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    /// The type table (for rendering values).
    pub fn types(&self) -> &TypeTable {
        &self.code.types
    }

    /// Runs the program's entry function with the given arguments.
    ///
    /// A thin run-until-done wrapper over [`Machine::start`] /
    /// [`Execution::run`].
    pub fn run_entry(&mut self, args: Vec<Value>) -> Result<Value, RuntimeError> {
        let entry = self
            .code
            .entry
            .ok_or_else(|| RuntimeError::Internal("program has no entry point".into()))?;
        self.run_fun(entry, args)
    }

    /// Runs an arbitrary function to completion — a thin wrapper over
    /// [`Machine::start`] / [`Execution::run`] with no budget.
    pub fn run_fun(&mut self, fun: FunId, args: Vec<Value>) -> Result<Value, RuntimeError> {
        let mut exec = self.start(fun, args)?;
        match exec.run(self, None)? {
            StepOutcome::Done(v) => Ok(v),
            StepOutcome::Suspended { .. } => Err(RuntimeError::Internal(
                "unbudgeted execution suspended".into(),
            )),
        }
    }

    /// Begins a *resumable* execution of `fun` — the checkpoint/resume
    /// entry point. The returned [`Execution`] owns the continuation
    /// state (environment, frame stack, pending output) whenever it is
    /// suspended; drive it with [`Execution::run`], giving each leg a
    /// step budget. The profiler frame stack lives inside the heap, so
    /// it travels with the heap across suspensions automatically.
    ///
    /// One machine drives one execution at a time: state is swapped
    /// into the machine for the duration of each [`Execution::run`] leg
    /// and back out at suspension. Starting a second execution while
    /// another is suspended is fine (each owns its state); running two
    /// *interleaved* legs on one machine is not — the profiler stack
    /// would interleave.
    pub fn start(&mut self, fun: FunId, args: Vec<Value>) -> Result<Execution<'p>, RuntimeError> {
        let f = &self.code.funs[fun.0 as usize];
        if f.arity != args.len() {
            return Err(RuntimeError::TypeMismatch(format!(
                "{} expects {} arguments, got {}",
                f.name,
                f.arity,
                args.len()
            )));
        }
        self.heap.prof_enter(FrameKind::Fun(fun));
        Ok(Execution {
            cur: Some(&f.body),
            frames: Vec::new(),
            env: frame_env(args, f.nslots),
            output: Vec::new(),
            steps: 0,
            code_uid: self.code.uid(),
            finished: false,
        })
    }

    /// Begins a resumable execution of the program's entry function.
    pub fn start_entry(&mut self, args: Vec<Value>) -> Result<Execution<'p>, RuntimeError> {
        let entry = self
            .code
            .entry
            .ok_or_else(|| RuntimeError::Internal("program has no entry point".into()))?;
        self.start(entry, args)
    }

    // ---- the main loop ------------------------------------------------

    fn step_loop(
        &mut self,
        start: &'p RExpr,
        step_end: Option<u64>,
    ) -> Result<Step<'p>, RuntimeError> {
        let mut cur = start;
        loop {
            if let Some(end) = step_end {
                // Suspend *before* executing the instruction, and only at
                // a non-RC instruction: Theorem 4's side condition — the
                // same one the in-flight auditor uses — guarantees the
                // suspended state is garbage-free and auditable. A run of
                // RC instructions past the budget only overshoots by the
                // length of that run.
                if self.heap.stats.steps >= end && !is_rc_instruction(cur) {
                    return Ok(Step::Suspend(cur));
                }
            }
            self.heap.stats.steps += 1;
            if let Some(limit) = self.config.step_limit {
                if self.heap.stats.steps > limit {
                    return Err(RuntimeError::StepLimit(limit));
                }
            }
            if let Some(limit) = self.config.memory_limit_words {
                if self.heap.stats.live_words > limit {
                    return Err(RuntimeError::MemoryLimit {
                        limit_words: limit,
                        live_words: self.heap.stats.live_words,
                    });
                }
            }
            if let Some(every) = self.config.audit_every {
                if self.heap.stats.steps.is_multiple_of(every) && !is_rc_instruction(cur) {
                    crate::audit::check_machine(self).map_err(RuntimeError::Internal)?;
                    self.audits += 1;
                }
            }
            match cur {
                RExpr::Atom(a) => {
                    let v = self.read(*a);
                    match self.ret(v) {
                        Some(next) => cur = next,
                        None => return Ok(Step::Done(v)),
                    }
                }
                RExpr::Let { slot, rhs, body } => match &**rhs {
                    RExpr::Call { fun, args } => {
                        let (env, callee, fk) = self.prepare_call(*fun, args)?;
                        self.push_call_frame(fk, Some(*slot), Some(body));
                        self.env = env;
                        cur = callee;
                    }
                    RExpr::App { fun, args } => {
                        let f = self.read(*fun);
                        let (env, callee, fk) = self.prepare_apply(f, args)?;
                        self.push_call_frame(fk, Some(*slot), Some(body));
                        self.env = env;
                        cur = callee;
                    }
                    simple if is_simple(simple) => {
                        let v = self.eval_simple(simple)?;
                        self.env[*slot as usize] = v;
                        cur = body;
                    }
                    compound => {
                        self.frames.push(Frame::Local {
                            dst: *slot,
                            cont: body,
                        });
                        cur = compound;
                    }
                },
                RExpr::Seq(a, b) => match &**a {
                    RExpr::Call { fun, args } => {
                        let (env, callee, fk) = self.prepare_call(*fun, args)?;
                        self.push_call_frame(fk, None, Some(b));
                        self.env = env;
                        cur = callee;
                    }
                    RExpr::App { fun, args } => {
                        let f = self.read(*fun);
                        let (env, callee, fk) = self.prepare_apply(f, args)?;
                        self.push_call_frame(fk, None, Some(b));
                        self.env = env;
                        cur = callee;
                    }
                    simple if is_simple(simple) => {
                        self.eval_simple(simple)?;
                        cur = b;
                    }
                    compound => {
                        self.frames.push(Frame::Discard { cont: b });
                        cur = compound;
                    }
                },
                RExpr::Call { fun, args } => {
                    let (env, callee, fk) = self.prepare_call(*fun, args)?;
                    if self.tail_position() {
                        // Tail call: the current frame dies here.
                        self.heap.prof_tail(fk);
                        let dead = std::mem::replace(&mut self.env, env);
                        self.recycle_env(dead);
                    } else {
                        self.push_call_frame(fk, None, None);
                        self.env = env;
                    }
                    cur = callee;
                }
                RExpr::App { fun, args } => {
                    let f = self.read(*fun);
                    let (env, callee, fk) = self.prepare_apply(f, args)?;
                    if self.tail_position() {
                        self.heap.prof_tail(fk);
                        let dead = std::mem::replace(&mut self.env, env);
                        self.recycle_env(dead);
                    } else {
                        self.push_call_frame(fk, None, None);
                        self.env = env;
                    }
                    cur = callee;
                }
                RExpr::Match {
                    scrut,
                    arms,
                    default,
                } => {
                    let v = self.env[*scrut as usize];
                    cur = select_arm(
                        &self.heap,
                        &self.code.types,
                        &mut self.env,
                        v,
                        arms,
                        default,
                    )?;
                }
                RExpr::IsUnique {
                    var,
                    unique,
                    shared,
                } => {
                    let v = self.env[*var as usize];
                    cur = if self.heap.is_unique(v)? {
                        unique
                    } else {
                        shared
                    };
                }
                RExpr::Dup(slot, rest) => {
                    self.heap.dup(self.env[*slot as usize])?;
                    cur = rest;
                }
                RExpr::Drop(slot, rest) => {
                    self.heap.drop_value(self.env[*slot as usize])?;
                    cur = rest;
                }
                RExpr::DropReuse { var, token, body } => {
                    let t = self.heap.drop_reuse(self.env[*var as usize])?;
                    self.env[*token as usize] = t;
                    cur = body;
                }
                RExpr::Free(slot, rest) => {
                    self.heap.free_cell(self.env[*slot as usize])?;
                    cur = rest;
                }
                RExpr::DecRef(slot, rest) => {
                    self.heap.decref(self.env[*slot as usize])?;
                    cur = rest;
                }
                RExpr::DropToken(slot, rest) => {
                    self.heap.drop_token(self.env[*slot as usize])?;
                    cur = rest;
                }
                simple => {
                    // Value-producing terminals (Con, Prim, MkClosure,
                    // TokenOf, NullToken, Abort).
                    let v = self.eval_simple(simple)?;
                    match self.ret(v) {
                        Some(next) => cur = next,
                        None => return Ok(Step::Done(v)),
                    }
                }
            }
        }
    }

    /// Tail position: no pending local continuation in this frame.
    fn tail_position(&self) -> bool {
        !matches!(
            self.frames.last(),
            Some(Frame::Local { .. }) | Some(Frame::Discard { .. })
        )
    }

    fn push_call_frame(&mut self, fk: FrameKind, dst: Option<Slot>, cont: Option<&'p RExpr>) {
        self.heap.prof_enter(fk);
        let env = std::mem::take(&mut self.env);
        self.frames.push(Frame::Call { env, dst, cont });
    }

    /// Delivers a value to the next continuation.
    fn ret(&mut self, v: Value) -> Option<&'p RExpr> {
        loop {
            match self.frames.pop() {
                None => return None,
                Some(Frame::Call { env, dst, cont }) => {
                    self.heap.prof_exit();
                    let dead = std::mem::replace(&mut self.env, env);
                    self.recycle_env(dead);
                    if let Some(d) = dst {
                        self.env[d as usize] = v;
                    }
                    match cont {
                        Some(c) => return Some(c),
                        None => continue,
                    }
                }
                Some(Frame::Local { dst, cont }) => {
                    self.env[dst as usize] = v;
                    return Some(cont);
                }
                Some(Frame::Discard { cont }) => return Some(cont),
            }
        }
    }

    fn read(&self, a: Atom) -> Value {
        match a {
            Atom::Slot(s) => self.env[s as usize],
            Atom::Const(v) => v,
        }
    }

    fn read_args(&self, args: &[Atom]) -> Vec<Value> {
        args.iter().map(|a| self.read(*a)).collect()
    }

    /// Builds the environment for a direct call (from the current
    /// frame's atoms); returns it with the callee body. The caller
    /// decides whether to save the current frame or tail-jump.
    fn prepare_call(
        &mut self,
        fun: FunId,
        args: &[Atom],
    ) -> Result<(Vec<Value>, &'p RExpr, FrameKind), RuntimeError> {
        let f = &self.code.funs[fun.0 as usize];
        if f.arity != args.len() {
            return Err(RuntimeError::TypeMismatch(format!(
                "{} expects {} arguments, got {}",
                f.name,
                f.arity,
                args.len()
            )));
        }
        let nslots = f.nslots;
        let body = &f.body;
        let env = self.build_env(args, nslots);
        Ok((env, body, FrameKind::Fun(fun)))
    }

    /// Application of a first-class function value — rule (appᵣ):
    /// `dup ys; drop f; jump`.
    fn prepare_apply(
        &mut self,
        f: Value,
        args: &[Atom],
    ) -> Result<(Vec<Value>, &'p RExpr, FrameKind), RuntimeError> {
        match f {
            Value::Global(id) => self.prepare_call(id, args),
            Value::Ref(addr) => {
                let block = self.heap.view(addr)?;
                let BlockTag::Closure(lam) = block.tag else {
                    return Err(RuntimeError::TypeMismatch(
                        "application of a non-function block".into(),
                    ));
                };
                let l = &self.code.lambdas[lam.0 as usize];
                if l.nparams != args.len() {
                    return Err(RuntimeError::TypeMismatch(format!(
                        "closure expects {} arguments, got {}",
                        l.nparams,
                        args.len()
                    )));
                }
                let nslots = l.nslots;
                let body = &l.body;
                let mut env = self.take_env();
                let block = self.heap.view(addr)?;
                env.extend_from_slice(block.fields);
                for a in args {
                    env.push(self.read(*a));
                }
                env.resize(nslots, Value::Unit);
                // Rule (appᵣ): retain the captures, release the closure.
                let ncaptures = self.code.lambdas[lam.0 as usize].ncaptures;
                for &capture in env.iter().take(ncaptures) {
                    self.heap.dup(capture)?;
                }
                self.heap.drop_value(f)?;
                Ok((env, body, FrameKind::Lam(lam)))
            }
            other => Err(RuntimeError::TypeMismatch(format!(
                "application of non-function value {other}"
            ))),
        }
    }

    /// Evaluates a value-producing instruction that cannot call.
    fn eval_simple(&mut self, e: &RExpr) -> Result<Value, RuntimeError> {
        match e {
            RExpr::Atom(a) => Ok(self.read(*a)),
            RExpr::Prim { op, args } => {
                let vals = self.read_args(args);
                self.eval_prim(*op, &vals)
            }
            RExpr::MkClosure { lam, captures } => {
                self.maybe_collect();
                let mut fields = self.take_env();
                fields.extend(captures.iter().map(|s| self.env[*s as usize]));
                let addr = self.heap.alloc_slice(BlockTag::Closure(*lam), &fields);
                self.recycle_env(fields);
                Ok(Value::Ref(addr))
            }
            RExpr::Con {
                ctor,
                args,
                reuse,
                skip,
            } => {
                let vals = self.read_args(args);
                if let Some(tok_slot) = reuse {
                    match self.env[*tok_slot as usize] {
                        Value::Token(Some(addr)) => {
                            let out = self.heap.alloc_into(addr, *ctor, &vals, skip)?;
                            return Ok(Value::Ref(out));
                        }
                        Value::Token(None) => {}
                        other => {
                            return Err(RuntimeError::TypeMismatch(format!(
                                "constructor reuse argument is not a token: {other}"
                            )))
                        }
                    }
                }
                self.maybe_collect();
                let addr = self.heap.alloc_slice(BlockTag::Ctor(*ctor), &vals);
                Ok(Value::Ref(addr))
            }
            RExpr::TokenOf(slot) => self.heap.claim(self.env[*slot as usize]),
            RExpr::NullToken => Ok(Value::Token(None)),
            RExpr::Abort(msg) => Err(RuntimeError::Abort(msg.to_string())),
            other => Err(RuntimeError::Internal(format!(
                "eval_simple on compound expression {other:?}"
            ))),
        }
    }

    fn eval_prim(&mut self, op: PrimOp, vals: &[Value]) -> Result<Value, RuntimeError> {
        use PrimOp::*;
        let int = |v: &Value| {
            v.as_int()
                .ok_or_else(|| RuntimeError::TypeMismatch(format!("expected an integer, got {v}")))
        };
        let boolean = |b: bool| Value::Enum(if b { TypeTable::TRUE } else { TypeTable::FALSE });
        Ok(match op {
            Add => Value::Int(int(&vals[0])?.wrapping_add(int(&vals[1])?)),
            Sub => Value::Int(int(&vals[0])?.wrapping_sub(int(&vals[1])?)),
            Mul => Value::Int(int(&vals[0])?.wrapping_mul(int(&vals[1])?)),
            Div => {
                let d = int(&vals[1])?;
                if d == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Value::Int(int(&vals[0])?.wrapping_div(d))
            }
            Rem => {
                let d = int(&vals[1])?;
                if d == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Value::Int(int(&vals[0])?.wrapping_rem(d))
            }
            Neg => Value::Int(int(&vals[0])?.wrapping_neg()),
            Lt => boolean(int(&vals[0])? < int(&vals[1])?),
            Le => boolean(int(&vals[0])? <= int(&vals[1])?),
            Gt => boolean(int(&vals[0])? > int(&vals[1])?),
            Ge => boolean(int(&vals[0])? >= int(&vals[1])?),
            Eq => boolean(value_eq(&vals[0], &vals[1])?),
            Ne => boolean(!value_eq(&vals[0], &vals[1])?),
            Min => Value::Int(int(&vals[0])?.min(int(&vals[1])?)),
            Max => Value::Int(int(&vals[0])?.max(int(&vals[1])?)),
            RefNew => {
                self.maybe_collect();
                let addr = self.heap.alloc_slice(BlockTag::MutRef, &[vals[0]]);
                Value::Ref(addr)
            }
            RefGet => {
                // §2.7.3: read, retain the content, release the ref.
                let addr = ref_addr(&vals[0])?;
                let content = self.heap.view(addr)?.fields[0];
                self.heap.dup(content)?;
                self.heap.drop_value(vals[0])?;
                content
            }
            RefSet => {
                let addr = ref_addr(&vals[0])?;
                let block = self.heap.block_mut(addr)?;
                if block.tag != BlockTag::MutRef {
                    return Err(RuntimeError::TypeMismatch(":= on a non-ref".into()));
                }
                let old = std::mem::replace(&mut block.fields[0], vals[1]);
                self.heap.drop_value(old)?;
                self.heap.drop_value(vals[0])?;
                Value::Unit
            }
            TShare => {
                self.heap.tshare(vals[0])?;
                self.heap.drop_value(vals[0])?;
                Value::Unit
            }
            Println => {
                let n = match vals[0] {
                    Value::Int(i) => i,
                    Value::Unit => 0,
                    other => {
                        return Err(RuntimeError::TypeMismatch(format!(
                            "println of non-integer {other}"
                        )))
                    }
                };
                self.output.push(n);
                Value::Unit
            }
        })
    }

    /// Collect (GC mode) if the policy says so; all live values are in
    /// environments at allocation points thanks to ANF.
    fn maybe_collect(&mut self) {
        let Some(collector) = &mut self.collector else {
            return;
        };
        if !collector.should_collect(&self.heap) {
            return;
        }
        let frames = &self.frames;
        let env = &self.env;
        let roots = env.iter().chain(frames.iter().flat_map(|f| match f {
            Frame::Call { env, .. } => env.iter(),
            _ => [].iter(),
        }));
        collector.collect(&mut self.heap, roots);
    }

    // ---- inspection ----------------------------------------------------

    /// Reads a value back as a deep tree (for tests and the oracle
    /// comparison). Does not consume ownership.
    pub fn read_back(&self, v: Value) -> Result<DeepValue, RuntimeError> {
        read_back_in(&self.heap, &self.code.types, v)
    }

    /// Drops the program result (callers use this before asserting that
    /// a garbage-free run left the heap empty).
    pub fn drop_result(&mut self, v: Value) -> Result<(), RuntimeError> {
        self.heap.drop_value(v)
    }

    /// Root values for the auditor.
    pub(crate) fn root_values(&self) -> impl Iterator<Item = &Value> {
        self.env
            .iter()
            .chain(self.frames.iter().flat_map(|f| match f {
                Frame::Call { env, .. } => env.iter(),
                _ => [].iter(),
            }))
    }
}

fn frame_env(mut vals: Vec<Value>, nslots: usize) -> Vec<Value> {
    vals.resize(nslots, Value::Unit);
    vals
}

/// What one step-loop leg produced (internal).
enum Step<'p> {
    Done(Value),
    Suspend(&'p RExpr),
}

/// The outcome of one [`Execution::run`] leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The execution finished with this result value.
    Done(Value),
    /// The budget ran out at an auditable point; the execution owns its
    /// continuation and can be resumed with more fuel (or parked as a
    /// [`Checkpoint`]).
    Suspended {
        /// Cumulative steps executed by this execution so far.
        steps_used: u64,
        /// Live heap words at the suspension point — because Perceus is
        /// garbage-free at every step (Thm. 2/4), this is *exactly* the
        /// reachable data, so admission control can charge it against a
        /// memory budget with no slack for floating garbage.
        live_words: u64,
    },
}

/// A resumable execution: the machine's continuation state between
/// [`Execution::run`] legs.
///
/// While suspended it owns the environment, the frame stack, and the
/// output buffer; the heap (including the profiler frame stack) stays
/// with the [`Machine`]. A suspended execution is a precise, auditable
/// snapshot: [`Execution::root_addrs`] plus
/// [`crate::audit::check_heap`] must report zero floating garbage —
/// that is the suspension-point invariant this API maintains by only
/// suspending at instructions satisfying Theorem 4's side condition.
pub struct Execution<'p> {
    cur: Option<&'p RExpr>,
    frames: Vec<Frame<'p>>,
    env: Vec<Value>,
    output: Vec<i64>,
    steps: u64,
    code_uid: u64,
    finished: bool,
}

impl<'p> Execution<'p> {
    /// Runs until done, error, or (with a budget) suspension after
    /// roughly `budget` more steps. `machine` must be the machine (or a
    /// machine over the same heap and [`Compiled`]) that started this
    /// execution: its heap carries the execution's data and profiler
    /// stack.
    ///
    /// On `Done`/`Err` the execution is finished and cannot run again;
    /// the profiler exits the entry frame exactly as the old
    /// run-to-completion API did. On `Suspended` the continuation moves
    /// back into `self` and the machine is left neutral (empty frames
    /// and environment).
    pub fn run(
        &mut self,
        machine: &mut Machine<'p>,
        budget: Option<u64>,
    ) -> Result<StepOutcome, RuntimeError> {
        if self.finished {
            return Err(RuntimeError::Internal(
                "resume of a finished execution".into(),
            ));
        }
        if self.code_uid != machine.code.uid() {
            return Err(RuntimeError::Internal(
                "execution resumed on a machine for a different program".into(),
            ));
        }
        let cur = self.cur.take().ok_or_else(|| {
            RuntimeError::Internal("resume of an execution that is already running".into())
        })?;
        machine.env = std::mem::take(&mut self.env);
        machine.frames = std::mem::take(&mut self.frames);
        if !self.output.is_empty() {
            // Carry output printed by earlier legs (machine.output is
            // empty unless the caller reuses one machine across legs, in
            // which case it already holds this execution's history).
            let mut out = std::mem::take(&mut self.output);
            out.append(&mut machine.output);
            machine.output = out;
        }
        let start_steps = machine.heap.stats.steps;
        let step_end = budget.map(|b| start_steps.saturating_add(b));
        let r = machine.step_loop(cur, step_end);
        self.steps = self
            .steps
            .saturating_add(machine.heap.stats.steps - start_steps);
        match r {
            Ok(Step::Done(v)) => {
                self.finished = true;
                machine.heap.prof_exit();
                Ok(StepOutcome::Done(v))
            }
            Ok(Step::Suspend(next)) => {
                self.cur = Some(next);
                self.env = std::mem::take(&mut machine.env);
                self.frames = std::mem::take(&mut machine.frames);
                self.output = std::mem::take(&mut machine.output);
                Ok(StepOutcome::Suspended {
                    steps_used: self.steps,
                    live_words: machine.heap.stats.live_words,
                })
            }
            Err(e) => {
                self.finished = true;
                machine.heap.prof_exit();
                Err(e)
            }
        }
    }

    /// Whether the execution has completed (or died with an error).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Cumulative steps executed across all legs so far.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Heap roots of the suspended continuation: every live address
    /// reachable from the environment or a pending frame. Feed these to
    /// [`crate::audit::check_heap`] to assert garbage-freedom at the
    /// suspension point.
    pub fn root_addrs(&self, heap: &Heap) -> Vec<crate::value::Addr> {
        collect_roots(
            heap,
            self.env
                .iter()
                .chain(self.frames.iter().flat_map(frame_values)),
        )
    }

    /// Parks the suspended execution as a lifetime-erased
    /// [`Checkpoint`] that can outlive the `&Compiled` borrow. Errors
    /// if the execution already finished.
    pub fn into_checkpoint(self) -> Result<Checkpoint, RuntimeError> {
        if self.finished {
            return Err(RuntimeError::Internal(
                "checkpoint of a finished execution".into(),
            ));
        }
        let cur = self.cur.ok_or_else(|| {
            RuntimeError::Internal("checkpoint of an execution that is running".into())
        })?;
        let frames = self
            .frames
            .into_iter()
            .map(|f| match f {
                Frame::Call { env, dst, cont } => RawFrame::Call {
                    env,
                    dst,
                    cont: cont.map(erase),
                },
                Frame::Local { dst, cont } => RawFrame::Local {
                    dst,
                    cont: erase(cont),
                },
                Frame::Discard { cont } => RawFrame::Discard { cont: erase(cont) },
            })
            .collect();
        Ok(Checkpoint {
            code_uid: self.code_uid,
            cur: erase(cur),
            frames,
            env: self.env,
            output: self.output,
            steps: self.steps,
        })
    }
}

fn erase(e: &RExpr) -> usize {
    e as *const RExpr as usize
}

fn frame_values<'a, 'p>(f: &'a Frame<'p>) -> std::slice::Iter<'a, Value> {
    match f {
        Frame::Call { env, .. } => env.iter(),
        _ => [].iter(),
    }
}

fn collect_roots<'a>(
    heap: &Heap,
    values: impl Iterator<Item = &'a Value>,
) -> Vec<crate::value::Addr> {
    values
        .filter_map(|v| match v {
            Value::Ref(a) | Value::Token(Some(a)) => Some(*a),
            _ => None,
        })
        .filter(|a| heap.ref_alive(*a))
        .collect()
}

/// A parked, lifetime-erased continuation: the serialized form of a
/// suspended [`Execution`], able to outlive the `&Compiled` borrow so a
/// serving worker can hold it in a suspension table across requests.
///
/// Expression positions are stored as raw node addresses. They stay
/// valid because a [`Compiled`] program's expression trees live in
/// heap-allocated nodes (`Box`/`Vec`) whose addresses do not change
/// when the `Compiled` value itself moves; what *would* invalidate them
/// is dropping or mutating the `Compiled`, which is why
/// [`Checkpoint::resume`] is `unsafe` and re-checks the program's
/// unique [`Compiled::uid`].
pub struct Checkpoint {
    code_uid: u64,
    cur: usize,
    frames: Vec<RawFrame>,
    env: Vec<Value>,
    output: Vec<i64>,
    steps: u64,
}

enum RawFrame {
    Call {
        env: Vec<Value>,
        dst: Option<Slot>,
        cont: Option<usize>,
    },
    Local {
        dst: Slot,
        cont: usize,
    },
    Discard {
        cont: usize,
    },
}

impl Checkpoint {
    /// Cumulative steps executed before parking.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Heap roots of the parked continuation (safe: roots live in the
    /// captured environments, not behind the erased code pointers), for
    /// auditing a parked session with [`crate::audit::check_heap`].
    pub fn root_addrs(&self, heap: &Heap) -> Vec<crate::value::Addr> {
        collect_roots(
            heap,
            self.env
                .iter()
                .chain(self.frames.iter().flat_map(|f| match f {
                    RawFrame::Call { env, .. } => env.iter(),
                    _ => [].iter(),
                })),
        )
    }

    /// Un-parks the checkpoint against its compiled program.
    ///
    /// Fails (safely) if `code` is not the same *instance* the
    /// checkpoint was taken from — every [`Compiled`] carries a unique
    /// id, fresh even across clones, so a lookup-table mixup is caught
    /// before any raw pointer is dereferenced.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `code` is the identical `Compiled`
    /// value this checkpoint was parked from and that it has not been
    /// dropped or mutated in between (e.g. it is held alive behind an
    /// `Arc` for the checkpoint's whole lifetime). The uid check makes
    /// accidents deterministic errors, but it cannot prove liveness:
    /// that contract is the caller's.
    pub unsafe fn resume<'p>(self, code: &'p Compiled) -> Result<Execution<'p>, RuntimeError> {
        if self.code_uid != code.uid() {
            return Err(RuntimeError::Internal(
                "checkpoint resumed against a different compiled program".into(),
            ));
        }
        // SAFETY: uid equality means `code` is the instance the erased
        // pointers were taken from, and the caller warrants it is still
        // alive and unmutated; node addresses are stable under moves of
        // the `Compiled` value itself.
        let expr = |p: usize| unsafe { &*(p as *const RExpr) };
        let frames = self
            .frames
            .into_iter()
            .map(|f| match f {
                RawFrame::Call { env, dst, cont } => Frame::Call {
                    env,
                    dst,
                    cont: cont.map(expr),
                },
                RawFrame::Local { dst, cont } => Frame::Local {
                    dst,
                    cont: expr(cont),
                },
                RawFrame::Discard { cont } => Frame::Discard { cont: expr(cont) },
            })
            .collect();
        Ok(Execution {
            cur: Some(expr(self.cur)),
            frames,
            env: self.env,
            output: self.output,
            steps: self.steps,
            code_uid: self.code_uid,
            finished: false,
        })
    }
}

/// Selects and binds a match arm — a borrowing bind per Fig. 1b: fields
/// are copied into the binder slots with no retains; the compiled arm
/// code contains the binder `dup`s and scrutinee `drop`.
fn select_arm<'p>(
    heap: &Heap,
    types: &TypeTable,
    env: &mut [Value],
    scrut: Value,
    arms: &'p [RArm],
    default: &'p Option<Box<RExpr>>,
) -> Result<&'p RExpr, RuntimeError> {
    let (ctor, addr): (CtorId, Option<crate::value::Addr>) = match scrut {
        Value::Enum(c) => (c, None),
        Value::Ref(a) => {
            let block = heap.view(a)?;
            match block.tag {
                BlockTag::Ctor(c) => (c, Some(a)),
                _ => {
                    return Err(RuntimeError::TypeMismatch(
                        "match on a non-constructor block".into(),
                    ))
                }
            }
        }
        other => {
            return Err(RuntimeError::TypeMismatch(format!(
                "match on non-constructor value {other}"
            )))
        }
    };
    for arm in arms {
        if arm.ctor == ctor {
            if let Some(a) = addr {
                let fields = heap.view(a)?.fields;
                for (b, v) in arm.binders.iter().zip(fields.iter()) {
                    if let Some(slot) = b {
                        env[*slot as usize] = *v;
                    }
                }
            }
            return Ok(&arm.body);
        }
    }
    match default {
        Some(d) => Ok(d),
        None => Err(RuntimeError::MatchFailure(format!(
            "no arm for constructor {} ({ctor:?})",
            types.ctor(ctor).name
        ))),
    }
}

fn ref_addr(v: &Value) -> Result<crate::value::Addr, RuntimeError> {
    v.addr()
        .ok_or_else(|| RuntimeError::TypeMismatch(format!("expected a reference, got {v}")))
}

/// Structural equality for the `==` primitive (ints, singletons, unit).
fn value_eq(a: &Value, b: &Value) -> Result<bool, RuntimeError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x == y),
        (Value::Enum(x), Value::Enum(y)) => Ok(x == y),
        (Value::Unit, Value::Unit) => Ok(true),
        _ => Err(RuntimeError::TypeMismatch(format!(
            "== on non-primitive values {a} and {b}"
        ))),
    }
}

fn is_simple(e: &RExpr) -> bool {
    matches!(
        e,
        RExpr::Atom(_)
            | RExpr::Prim { .. }
            | RExpr::MkClosure { .. }
            | RExpr::Con { .. }
            | RExpr::TokenOf(_)
            | RExpr::NullToken
            | RExpr::Abort(_)
    )
}

fn is_rc_instruction(e: &RExpr) -> bool {
    // `TokenOf` belongs here too: the unfused drop-reuse expansion is
    // `drop child…; &x` (Fig. 1f), and between the child drops and the
    // claim the cell's fields transiently dangle — exactly the states
    // Theorem 4's side condition ("not at a dup/drop operation")
    // excludes. The claim itself ends the window (claimed cells' fields
    // are not treated as references).
    matches!(
        e,
        RExpr::Dup(..)
            | RExpr::Drop(..)
            | RExpr::DropReuse { .. }
            | RExpr::Free(..)
            | RExpr::DecRef(..)
            | RExpr::DropToken(..)
            | RExpr::IsUnique { .. }
            | RExpr::TokenOf(_)
            | RExpr::NullToken
    )
}

/// A machine value read back as a tree, independent of the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeepValue {
    Unit,
    Int(i64),
    /// Constructor by name (names make test failures readable).
    Ctor(String, Vec<DeepValue>),
    /// Closures compare as opaque.
    Closure,
    /// Mutable reference cell.
    MutRef(Box<DeepValue>),
    /// A weak shared reference, read back opaquely: following it would
    /// recurse through cycles (that is what weak back-edges are for),
    /// and its target's liveness is another thread's business.
    Weak,
}

impl fmt::Display for DeepValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepValue::Unit => f.write_str("()"),
            DeepValue::Int(i) => write!(f, "{i}"),
            DeepValue::Ctor(name, fields) => {
                f.write_str(name)?;
                if !fields.is_empty() {
                    f.write_str("(")?;
                    for (i, x) in fields.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{x}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            DeepValue::Closure => f.write_str("<fun>"),
            DeepValue::MutRef(v) => write!(f, "ref({v})"),
            DeepValue::Weak => f.write_str("<weak>"),
        }
    }
}

/// Reads a machine value into a [`DeepValue`] tree.
pub fn read_back_in(heap: &Heap, types: &TypeTable, v: Value) -> Result<DeepValue, RuntimeError> {
    match v {
        Value::Unit | Value::Token(_) => Ok(DeepValue::Unit),
        Value::Weak(_) => Ok(DeepValue::Weak),
        Value::Int(i) => Ok(DeepValue::Int(i)),
        Value::Enum(c) => Ok(DeepValue::Ctor(types.ctor(c).name.to_string(), Vec::new())),
        Value::Global(_) => Ok(DeepValue::Closure),
        Value::Ref(addr) => {
            let b = heap.view(addr)?;
            match b.tag {
                BlockTag::Ctor(c) => {
                    let mut fields = Vec::with_capacity(b.fields.len());
                    for f in b.fields.iter() {
                        fields.push(read_back_in(heap, types, *f)?);
                    }
                    Ok(DeepValue::Ctor(types.ctor(c).name.to_string(), fields))
                }
                BlockTag::Closure(_) => Ok(DeepValue::Closure),
                BlockTag::MutRef => Ok(DeepValue::MutRef(Box::new(read_back_in(
                    heap,
                    types,
                    b.fields[0],
                )?))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::compile;
    use perceus_core::ir::builder::{arm, arm0, con, ite, ProgramBuilder};
    use perceus_core::ir::expr::{Expr, Lambda, PrimOp};
    use perceus_core::passes::{PassConfig, Pipeline};

    fn run(p: perceus_core::ir::Program, arg: i64) -> (Value, Stats) {
        let p = Pipeline::new(PassConfig::perceus()).run(p).unwrap();
        let compiled = compile(&p).unwrap();
        let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
        let v = m.run_entry(vec![Value::Int(arg)]).unwrap();
        m.drop_result(v).unwrap();
        assert_eq!(m.heap.live_blocks(), 0, "garbage-free");
        (v, m.heap.stats)
    }

    use crate::heap::Stats;

    /// A compound let-rhs (match) uses a Local frame and continues in
    /// the same environment.
    #[test]
    fn local_frames_for_compound_rhs() {
        let mut pb = ProgramBuilder::new();
        let n = pb.fresh("n");
        let c = pb.fresh("c");
        let x = pb.fresh("x");
        // val c = (n < 5); val x = match c { True -> 1; False -> 2 }; x + n
        let body = Expr::let_(
            c.clone(),
            Expr::Prim(PrimOp::Lt, vec![Expr::Var(n.clone()), Expr::int(5)]),
            Expr::let_(
                x.clone(),
                ite(c.clone(), Expr::int(1), Expr::int(2)),
                Expr::Prim(
                    PrimOp::Add,
                    vec![Expr::Var(x.clone()), Expr::Var(n.clone())],
                ),
            ),
        );
        let f = pb.fun("f", vec![n.clone()], body);
        pb.entry(f);
        let (v, _) = run(pb.finish(), 3);
        assert_eq!(v.as_int(), Some(4));
        let mut pb = ProgramBuilder::new();
        let n = pb.fresh("n");
        let c = pb.fresh("c");
        let x = pb.fresh("x");
        let body = Expr::let_(
            c.clone(),
            Expr::Prim(PrimOp::Lt, vec![Expr::Var(n.clone()), Expr::int(5)]),
            Expr::let_(
                x.clone(),
                ite(c.clone(), Expr::int(1), Expr::int(2)),
                Expr::Prim(
                    PrimOp::Add,
                    vec![Expr::Var(x.clone()), Expr::Var(n.clone())],
                ),
            ),
        );
        let f = pb.fun("f", vec![n.clone()], body);
        pb.entry(f);
        let (v, _) = run(pb.finish(), 9);
        assert_eq!(v.as_int(), Some(11));
    }

    /// Applying a non-function value is a type error, not a crash.
    #[test]
    fn applying_non_function_errors() {
        let mut pb = ProgramBuilder::new();
        let n = pb.fresh("n");
        let body = Expr::App(Box::new(Expr::Var(n.clone())), vec![Expr::int(1)]);
        let f = pb.fun("f", vec![n], body);
        pb.entry(f);
        let p = Pipeline::new(PassConfig::perceus())
            .run(pb.finish())
            .unwrap();
        let compiled = compile(&p).unwrap();
        let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
        let err = m.run_entry(vec![Value::Int(7)]).unwrap_err();
        assert!(matches!(err, RuntimeError::TypeMismatch(_)), "{err}");
    }

    /// A closure value built from a Global is applied by direct entry
    /// (no closure allocation, no rc traffic on the callee).
    #[test]
    fn global_as_value_applies_directly() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let inc = pb.fun(
            "inc",
            vec![x.clone()],
            Expr::Prim(PrimOp::Add, vec![Expr::Var(x), Expr::int(1)]),
        );
        let n = pb.fresh("n");
        let g = pb.fresh("g");
        let body = Expr::let_(
            g.clone(),
            Expr::Global(inc),
            Expr::App(Box::new(Expr::Var(g.clone())), vec![Expr::Var(n.clone())]),
        );
        let f = pb.fun("main", vec![n], body);
        pb.entry(f);
        let (v, st) = run(pb.finish(), 41);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(st.allocations, 0, "no closure allocated for a global");
    }

    /// Closure application follows (appᵣ): captured values are retained
    /// for the body and the closure itself is released per call.
    #[test]
    fn closure_call_retains_captures_releases_closure() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("box", &[("BoxV", 1)]);
        let bx = cs[0];
        let n = pb.fresh("n");
        let b = pb.fresh("b");
        let f = pb.fresh("f");
        let q = pb.fresh("q");
        let r1 = pb.fresh("r1");
        let r2 = pb.fresh("r2");
        let inner1 = pb.fresh("i1");
        let inner2 = pb.fresh("i2");
        // val b = BoxV(n)
        // val f = fn(q){ match b { BoxV(i) -> i + q } }
        // f(1) + f(2)   — two calls through the same closure.
        let lam = Expr::Lam(Lambda {
            params: vec![q.clone()],
            captures: vec![],
            body: Box::new(Expr::Match {
                scrutinee: b.clone(),
                arms: vec![arm(
                    bx,
                    vec![inner1.clone()],
                    Expr::Prim(
                        PrimOp::Add,
                        vec![Expr::Var(inner1.clone()), Expr::Var(q.clone())],
                    ),
                )],
                default: None,
            }),
        });
        let body = Expr::let_(
            b.clone(),
            con(bx, vec![Expr::Var(n.clone())]),
            Expr::let_(
                f.clone(),
                lam,
                Expr::let_(
                    r1.clone(),
                    Expr::App(Box::new(Expr::Var(f.clone())), vec![Expr::int(1)]),
                    Expr::let_(
                        r2.clone(),
                        Expr::App(Box::new(Expr::Var(f.clone())), vec![Expr::int(2)]),
                        Expr::Prim(
                            PrimOp::Add,
                            vec![Expr::Var(r1.clone()), Expr::Var(r2.clone())],
                        ),
                    ),
                ),
            ),
        );
        let _ = inner2;
        let main = pb.fun("main", vec![n], body);
        pb.entry(main);
        let (v, st) = run(pb.finish(), 10);
        assert_eq!(v.as_int(), Some(23));
        // One BoxV + one closure allocated; everything freed.
        assert_eq!(st.allocations, 2);
    }

    /// A recursive list build-and-sum program — enough steps and live
    /// heap to make budgeted suspension interesting.
    fn list_sum_compiled() -> Compiled {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);

        // build(n) = if n < 1 then Nil else Cons(n, build(n - 1))
        let n = pb.fresh("n");
        let build = pb.declare("build", vec![n.clone()]);
        let c = pb.fresh("c");
        let t = pb.fresh("t");
        let body = Expr::let_(
            c.clone(),
            Expr::Prim(PrimOp::Lt, vec![Expr::Var(n.clone()), Expr::int(1)]),
            ite(
                c.clone(),
                con(nil, vec![]),
                Expr::let_(
                    t.clone(),
                    Expr::Call(
                        build,
                        vec![Expr::Prim(
                            PrimOp::Sub,
                            vec![Expr::Var(n.clone()), Expr::int(1)],
                        )],
                    ),
                    con(cons, vec![Expr::Var(n.clone()), Expr::Var(t.clone())]),
                ),
            ),
        );
        pb.set_body(build, body);

        // sum(xs) = match xs { Nil -> 0; Cons(h, t) -> h + sum(t) }
        let xs = pb.fresh("xs");
        let sum = pb.declare("sum", vec![xs.clone()]);
        let h = pb.fresh("h");
        let t2 = pb.fresh("t2");
        let r = pb.fresh("r");
        let body = Expr::Match {
            scrutinee: xs.clone(),
            arms: vec![
                arm0(nil, Expr::int(0)),
                arm(
                    cons,
                    vec![h.clone(), t2.clone()],
                    Expr::let_(
                        r.clone(),
                        Expr::Call(sum, vec![Expr::Var(t2.clone())]),
                        Expr::Prim(
                            PrimOp::Add,
                            vec![Expr::Var(h.clone()), Expr::Var(r.clone())],
                        ),
                    ),
                ),
            ],
            default: None,
        };
        pb.set_body(sum, body);

        let m = pb.fresh("m");
        let l = pb.fresh("l");
        let body = Expr::let_(
            l.clone(),
            Expr::Call(build, vec![Expr::Var(m.clone())]),
            Expr::Call(sum, vec![Expr::Var(l.clone())]),
        );
        let main = pb.fun("main", vec![m], body);
        pb.entry(main);
        let p = Pipeline::new(PassConfig::perceus())
            .run(pb.finish())
            .unwrap();
        compile(&p).unwrap()
    }

    /// Chopping a run into fixed budgets suspends (at auditable points)
    /// and resumes to the identical result and bit-identical stats.
    #[test]
    fn budgeted_legs_match_uninterrupted_run_exactly() {
        let compiled = list_sum_compiled();

        let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
        let v = m.run_entry(vec![Value::Int(50)]).unwrap();
        m.drop_result(v).unwrap();
        assert_eq!(m.heap.live_blocks(), 0);
        let uninterrupted = m.heap.stats;

        let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
        let mut exec = m.start_entry(vec![Value::Int(50)]).unwrap();
        let mut suspensions = 0u64;
        let v = loop {
            match exec.run(&mut m, Some(97)).unwrap() {
                StepOutcome::Done(v) => break v,
                StepOutcome::Suspended { steps_used, .. } => {
                    suspensions += 1;
                    assert_eq!(steps_used, m.heap.stats.steps);
                    // The suspension-point invariant: the parked state
                    // is garbage-free and fully auditable.
                    let roots = exec.root_addrs(&m.heap);
                    crate::audit::check_heap(&m.heap, &roots).expect("suspension audit");
                }
            }
        };
        assert!(suspensions > 2, "the budget must actually bite");
        m.drop_result(v).unwrap();
        assert_eq!(m.heap.live_blocks(), 0, "garbage-free after resume");
        assert_eq!(v.as_int(), Some(50 * 51 / 2));
        assert_eq!(m.heap.stats, uninterrupted, "bit-identical schedule");
    }

    /// Park a suspended execution as a lifetime-erased checkpoint,
    /// audit it while parked, then resume it against the same program.
    #[test]
    fn checkpoint_roundtrip_preserves_result() {
        let compiled = list_sum_compiled();
        let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
        let mut exec = m.start_entry(vec![Value::Int(40)]).unwrap();
        let StepOutcome::Suspended { .. } = exec.run(&mut m, Some(200)).unwrap() else {
            panic!("a 200-step budget must suspend this program");
        };

        let checkpoint = exec.into_checkpoint().unwrap();
        let roots = checkpoint.root_addrs(&m.heap);
        crate::audit::check_heap(&m.heap, &roots).expect("parked audit");

        // A structurally identical clone is a *different* instance:
        // resuming against it must fail before touching any pointer.
        let clone = compiled.clone();
        assert_ne!(clone.uid(), compiled.uid());
        let checkpoint = match unsafe { checkpoint.resume(&clone) } {
            Err(RuntimeError::Internal(_)) => {
                // Re-park for the real resume below.
                let mut m2 = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
                let mut e2 = m2.start_entry(vec![Value::Int(40)]).unwrap();
                match e2.run(&mut m2, Some(200)).unwrap() {
                    StepOutcome::Suspended { .. } => {
                        let cp = e2.into_checkpoint().unwrap();
                        m = m2;
                        cp
                    }
                    other => panic!("expected suspension, got {other:?}"),
                }
            }
            Ok(_) => panic!("resume against a clone must fail"),
            Err(other) => panic!("unexpected error {other}"),
        };

        // SAFETY: `compiled` is the instance the checkpoint was parked
        // from and outlives the resumed execution.
        let mut exec = unsafe { checkpoint.resume(&compiled) }.unwrap();
        let v = loop {
            match exec.run(&mut m, Some(500)).unwrap() {
                StepOutcome::Done(v) => break v,
                StepOutcome::Suspended { .. } => {}
            }
        };
        assert_eq!(v.as_int(), Some(40 * 41 / 2));
        m.drop_result(v).unwrap();
        assert_eq!(m.heap.live_blocks(), 0);
    }

    /// Singleton constructors dispatch without touching the heap.
    #[test]
    fn singleton_match_never_allocates() {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("tri", &[("L", 0), ("M", 0), ("R", 0)]);
        let n = pb.fresh("n");
        let c = pb.fresh("c");
        let s = pb.fresh("s");
        let body = Expr::let_(
            c.clone(),
            Expr::Prim(PrimOp::Lt, vec![Expr::Var(n.clone()), Expr::int(0)]),
            Expr::let_(
                s.clone(),
                ite(c.clone(), con(cs[0], vec![]), con(cs[2], vec![])),
                Expr::Match {
                    scrutinee: s.clone(),
                    arms: vec![
                        arm0(cs[0], Expr::int(-1)),
                        arm0(cs[1], Expr::int(0)),
                        arm0(cs[2], Expr::int(1)),
                    ],
                    default: None,
                },
            ),
        );
        let main = pb.fun("main", vec![n], body);
        pb.entry(main);
        let (v, st) = run(pb.finish(), 7);
        assert_eq!(v.as_int(), Some(1));
        assert_eq!(st.allocations, 0);
        assert_eq!(st.rc_ops(), 0, "singletons cost nothing");
    }
}
