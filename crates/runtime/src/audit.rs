//! The garbage-free / soundness auditor — executable counterparts of the
//! paper's theorems, checked against live machine states:
//!
//! * **Soundness (Thm. 1)** is enforced continuously by the
//!   generation-checked heap: a dangling reference in generated code is
//!   a deterministic [`crate::RuntimeError::UseAfterFree`], never corruption.
//! * **Count adequacy (Appendix D.3, lower bound)**: every live block's
//!   reference count is at least the number of references to it from
//!   other live blocks — a count below that would inevitably
//!   use-after-free later. The same bound holds for shared-segment
//!   blocks against *this thread's* references: other threads only ever
//!   drop references they own, so a racing decrement can never take a
//!   shared count below the references this (paused) thread holds.
//! * **Garbage-freeness (Thm. 2/4)**: every live block is reachable
//!   from the machine's roots (environments, saved frames, reuse
//!   tokens). Two classes are tolerated and reported instead of flagged:
//!   blocks held only by a mutable-reference cycle (the paper's §2.7.4
//!   explicitly leaves cycles to the programmer) and blocks whose count
//!   sits at the sticky floor — pinned alive *by design* (§2.7.2's
//!   overflow discipline trades exactly this much garbage-freedom for a
//!   bounded header).
//!
//! In a parallel run each worker thread audits its own local heap; the
//! thread-shared segment is audited once at thread join, when it is
//! quiescent, by [`check_shared_at_join`] — together the two cover both
//! heap segments, which is the Thm. 2/4 statement the concurrent
//! runtime can honestly make.
//!
//! The machine invokes [`check_machine`] every `audit_every` steps (at
//! states that are not at a `dup`/`drop`, matching the side condition of
//! Theorem 4). The strongest end-to-end check is performed by the test
//! suites: after a run completes and the result is dropped, the heap
//! must be **empty**.

use crate::heap::{Heap, SharedHeap, STICKY};
use crate::machine::Machine;
use crate::value::{Addr, Value};
use std::collections::{HashMap, HashSet};

/// Outcome of a heap audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Live blocks inspected.
    pub live_blocks: u64,
    /// Blocks kept alive only by a mutable-reference cycle (tolerated,
    /// per §2.7.4).
    pub cycle_garbage: u64,
    /// Blocks pinned at the sticky floor (or held only by pinned
    /// blocks): never freed by design, so not leaks (§2.7.2).
    pub pinned_blocks: u64,
}

/// Audits a machine state; returns a report or a violation description.
pub fn check_machine(m: &Machine<'_>) -> Result<AuditReport, String> {
    let roots: Vec<Addr> = m
        .root_values()
        .filter_map(root_addr)
        .filter(|a| m.heap.ref_alive(*a)) // generation-stale slots are not roots
        .collect();
    check_heap(&m.heap, &roots)
}

fn root_addr(v: &Value) -> Option<Addr> {
    match v {
        Value::Ref(a) => Some(*a),
        Value::Token(Some(a)) => Some(*a),
        _ => None,
    }
}

/// Audits a heap against an explicit root set. Local blocks carry the
/// full obligations (adequate counts, reachability); attached
/// shared-segment blocks are checked for dangling references and count
/// adequacy but not reachability — other threads may hold them.
pub fn check_heap(heap: &Heap, roots: &[Addr]) -> Result<AuditReport, String> {
    // 1. Count internal references (fields of live, unclaimed blocks).
    //    Keyed by `Addr::index`, which keeps the two segments disjoint
    //    (shared addresses carry the segment bit).
    let mut internal: HashMap<u32, u32> = HashMap::new();
    let mut live = Vec::new();
    for (addr, block) in heap.iter_live() {
        live.push(addr);
        if block.header == 0 {
            continue; // claimed by a reuse token: contents meaningless
        }
        for f in block.fields.iter() {
            if let Value::Ref(child) = f {
                if !heap.ref_alive(*child) {
                    return Err(format!("block {addr} holds dangling reference {child}"));
                }
                *internal.entry(child.index).or_insert(0) += 1;
            }
        }
    }

    // 2. Count adequacy: header magnitude ≥ internal references. For
    //    shared children the bound still holds against this thread's
    //    live references even under concurrent drops elsewhere, so the
    //    check is safe on the shared side too.
    if heap.rc_active() {
        for (addr, block) in heap.iter_live() {
            if block.header == 0 {
                continue;
            }
            let count = block.header.unsigned_abs();
            let refs = internal.get(&addr.index).copied().unwrap_or(0);
            if count < refs {
                return Err(format!(
                    "block {addr} has count {count} but {refs} internal references"
                ));
            }
        }
        for (&index, &refs) in internal.iter() {
            let addr = Addr { index, gen: 0 };
            if !addr.is_shared() {
                continue;
            }
            let Ok(view) = heap.view(addr) else {
                continue; // dangling already reported above
            };
            let count = view.header.unsigned_abs();
            if count < refs {
                return Err(format!(
                    "shared block {addr} has count {count} but {refs} references \
                     from this thread"
                ));
            }
        }
    }

    // 3. Reachability from roots (crossing into the shared segment
    //    freely: a local root may hold shared data).
    let mut seen: HashSet<u32> = HashSet::new();
    let mut work: Vec<Addr> = roots.to_vec();
    while let Some(addr) = work.pop() {
        if !seen.insert(addr.index) {
            continue;
        }
        let Ok(block) = heap.view(addr) else {
            continue;
        };
        if block.header == 0 {
            continue; // claimed cells hold no real references
        }
        for f in block.fields.iter() {
            if let Value::Ref(child) = f {
                work.push(*child);
            }
        }
    }
    let unreachable: Vec<Addr> = live
        .iter()
        .copied()
        .filter(|a| !seen.contains(&a.index))
        .collect();

    // 4a. Sticky-pinned blocks are tolerated: a count at the floor is
    //     never decremented again, so the block (and everything it
    //     holds) stays alive by design, not by leak.
    let mut pinned_ok: HashSet<u32> = HashSet::new();
    for a in &unreachable {
        let Ok(b) = heap.view(*a) else { continue };
        if b.header <= STICKY {
            flood(heap, *a, &mut pinned_ok);
        }
    }

    // 4b. Remaining unreachable blocks are tolerated only when a cycle
    //     sustains them (mutable references, §2.7.4).
    let mut cycle_ok: HashSet<u32> = HashSet::new();
    for a in &unreachable {
        if cycle_ok.contains(&a.index) || pinned_ok.contains(&a.index) {
            continue;
        }
        if on_cycle(heap, *a) {
            // Everything reachable from a cycle node is cycle garbage.
            flood(heap, *a, &mut cycle_ok);
        }
    }
    let mut cycle_garbage = 0;
    let mut pinned_blocks = 0;
    for a in &unreachable {
        if pinned_ok.contains(&a.index) {
            pinned_blocks += 1;
        } else if cycle_ok.contains(&a.index) {
            cycle_garbage += 1;
        } else if heap.rc_active() {
            return Err(format!(
                "garbage-free violation: live block {a} is unreachable from the roots"
            ));
        }
    }

    Ok(AuditReport {
        live_blocks: live.len() as u64,
        cycle_garbage,
        pinned_blocks,
    })
}

/// Marks everything reachable from `start` (inclusive) in `out`.
fn flood(heap: &Heap, start: Addr, out: &mut HashSet<u32>) {
    let mut work = vec![start];
    while let Some(n) = work.pop() {
        if !out.insert(n.index) {
            continue;
        }
        if let Ok(b) = heap.view(n) {
            for f in b.fields.iter() {
                if let Value::Ref(c) = f {
                    work.push(*c);
                }
            }
        }
    }
}

/// Can `start` reach itself?
fn on_cycle(heap: &Heap, start: Addr) -> bool {
    let mut seen = HashSet::new();
    let mut work = Vec::new();
    if let Ok(b) = heap.view(start) {
        for f in b.fields.iter() {
            if let Value::Ref(c) = f {
                work.push(*c);
            }
        }
    }
    while let Some(n) = work.pop() {
        if n.index == start.index {
            return true;
        }
        if !seen.insert(n.index) {
            continue;
        }
        if let Ok(b) = heap.view(n) {
            for f in b.fields.iter() {
                if let Value::Ref(c) = f {
                    work.push(*c);
                }
            }
        }
    }
    false
}

/// Join-time report over the thread-shared segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedAudit {
    /// Slots whose strong count reached zero during the run.
    pub freed_blocks: u64,
    /// Slots still live at join.
    pub live_blocks: u64,
    /// Live slots pinned at the sticky floor or held by pinned slots
    /// (tolerated, §2.7.2).
    pub pinned_blocks: u64,
    /// Outstanding weak counts summed over every slot (live or dead —
    /// a weak of a dead block is legal and still owns its count).
    pub weak_refs: u64,
    /// Dead slots whose field storage was physically released by epoch
    /// reclamation (the rest release at the next `try_reclaim`).
    pub reclaimed_blocks: u64,
}

/// Audits the thread-shared segment **after every worker has joined**
/// (the segment must be quiescent). The garbage-free claim at join: a
/// shared block may survive only if it is pinned at the sticky floor or
/// held by a pinned block — every counted reference was consumed by the
/// workers, so any other survivor is a leak. Count adequacy is checked
/// exactly (no races remain).
pub fn check_shared_at_join(segment: &SharedHeap) -> Result<SharedAudit, String> {
    let mut internal: HashMap<u32, u32> = HashMap::new();
    let mut weak_internal: HashMap<u32, u32> = HashMap::new();
    let mut weak_counts: HashMap<u32, u32> = HashMap::new();
    let mut live = Vec::new();
    let mut freed_blocks = 0;
    let mut weak_refs = 0u64;
    for (addr, header, weak, fields) in segment.iter_slots() {
        weak_refs += weak as u64;
        if weak > 0 {
            weak_counts.insert(addr.index, weak);
        }
        if header == 0 {
            freed_blocks += 1;
            continue;
        }
        if header > 0 {
            return Err(format!(
                "shared block {addr} has non-shared header {header}"
            ));
        }
        live.push((addr, header));
        for f in fields.iter() {
            match f {
                Value::Ref(child) => {
                    if !child.is_shared() {
                        return Err(format!(
                            "shared block {addr} holds thread-local reference {child}"
                        ));
                    }
                    *internal.entry(child.index).or_insert(0) += 1;
                }
                // Weak fields are not strong references: they confer no
                // liveness and are excluded from strong adequacy. Each
                // owns one *weak* count, checked below.
                Value::Weak(child) => {
                    *weak_internal.entry(child.index).or_insert(0) += 1;
                }
                _ => {}
            }
        }
    }
    // Count adequacy over the quiescent segment.
    for &(addr, header) in &live {
        let refs = internal.get(&addr.index).copied().unwrap_or(0);
        if header.unsigned_abs() < refs {
            return Err(format!(
                "shared block {addr} has count {} but {refs} internal references at join",
                header.unsigned_abs()
            ));
        }
    }
    // Weak adequacy: every weak field of a live block owns one weak
    // count on its target (the target's slot entry outlives its
    // storage, so a dangling weak is legal — but an *uncounted* one is
    // a bookkeeping bug that would later over-release).
    for (&index, &refs) in weak_internal.iter() {
        let have = weak_counts.get(&index).copied().unwrap_or(0);
        if have < refs {
            return Err(format!(
                "shared slot {index} has weak count {have} but {refs} weak references \
                 from live blocks at join"
            ));
        }
    }
    // Pinned blocks (and their holdings) survive by design; everything
    // else must have been reclaimed by the workers' final drops.
    let mut pinned_ok: HashSet<u32> = HashSet::new();
    for &(addr, header) in &live {
        if header <= STICKY {
            let mut work = vec![addr];
            while let Some(n) = work.pop() {
                if !pinned_ok.insert(n.index) {
                    continue;
                }
                if let Ok(b) = segment.view(n) {
                    for f in b.fields.iter() {
                        if let Value::Ref(c) = f {
                            work.push(*c);
                        }
                    }
                }
            }
        }
    }
    let mut pinned_blocks = 0;
    for &(addr, _) in &live {
        if pinned_ok.contains(&addr.index) {
            pinned_blocks += 1;
        } else {
            return Err(format!(
                "garbage-free violation at join: shared block {addr} is still live"
            ));
        }
    }
    Ok(SharedAudit {
        freed_blocks,
        live_blocks: live.len() as u64,
        pinned_blocks,
        weak_refs,
        reclaimed_blocks: segment.reclaimed().0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{BlockTag, HeapConfig, ReclaimMode};
    use perceus_core::ir::CtorId;

    fn cell(h: &mut Heap, fields: Vec<Value>) -> Addr {
        h.alloc(BlockTag::Ctor(CtorId(0)), fields.into_boxed_slice())
    }

    #[test]
    fn accepts_reachable_heap() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let inner = cell(&mut h, vec![Value::Int(1)]);
        let outer = cell(&mut h, vec![Value::Ref(inner)]);
        let report = check_heap(&h, &[outer]).unwrap();
        assert_eq!(report.live_blocks, 2);
        assert_eq!(report.cycle_garbage, 0);
        assert_eq!(report.pinned_blocks, 0);
    }

    #[test]
    fn detects_leak() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let _leaked = cell(&mut h, vec![]);
        let err = check_heap(&h, &[]).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }

    #[test]
    fn detects_undercount() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let child = cell(&mut h, vec![]);
        let a = cell(&mut h, vec![Value::Ref(child)]);
        let b = cell(&mut h, vec![Value::Ref(child)]);
        // child's count is 1 but two blocks reference it.
        let err = check_heap(&h, &[a, b]).unwrap_err();
        assert!(err.contains("internal references"), "{err}");
    }

    #[test]
    fn tolerates_ref_cycles() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let r = h.alloc(BlockTag::MutRef, vec![Value::Unit].into_boxed_slice());
        let holder = cell(&mut h, vec![Value::Ref(r)]);
        h.block_mut(r).unwrap().fields[0] = Value::Ref(holder);
        // Neither is reachable from any root, but they sustain each
        // other — the §2.7.4 situation.
        let report = check_heap(&h, &[]).unwrap();
        assert_eq!(report.cycle_garbage, 2);
    }

    fn pinned_case(recycle: bool) {
        // A block pinned at the sticky floor holds a child. Neither is
        // reachable from any root, and the pinned block is acyclic — yet
        // this is not a leak: the floor is never decremented (§2.7.2),
        // so the memory is retained *by design*. The audit must say
        // "pinned", not "garbage-free violation".
        let mut h = Heap::with_config(
            ReclaimMode::Rc,
            HeapConfig {
                recycle,
                ..HeapConfig::default()
            },
        );
        let child = cell(&mut h, vec![Value::Int(1)]);
        let a = cell(&mut h, vec![Value::Ref(child)]);
        h.block_mut(a).unwrap().header = crate::heap::STICKY;
        // Drops on the pinned block are no-ops; it stays live.
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 2, "sticky never freed");
        let report = check_heap(&h, &[]).unwrap();
        assert_eq!(report.pinned_blocks, 2, "pinned block and its holdings");
        assert_eq!(report.cycle_garbage, 0);
        // A genuinely leaked sibling still trips the audit.
        let _leaked = cell(&mut h, vec![]);
        let err = check_heap(&h, &[]).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }

    #[test]
    fn sticky_pinned_blocks_audit_as_pinned_with_recycling_on() {
        pinned_case(true);
    }

    #[test]
    fn sticky_pinned_blocks_audit_as_pinned_with_recycling_off() {
        pinned_case(false);
    }

    #[test]
    fn freelisted_blocks_are_invisible_to_the_audit() {
        // Populate several size-class free lists, then audit: a listed
        // slot is neither live (no count/reachability obligations) nor
        // leaked — the allocator is invisible to the garbage-free story.
        let mut h = Heap::new(ReclaimMode::Rc);
        for n in 0..4 {
            let fields: Vec<Value> = (0..n).map(Value::Int).collect();
            let a = cell(&mut h, fields);
            h.drop_value(Value::Ref(a)).unwrap();
        }
        assert_eq!(h.listed_blocks(), 4);
        let keep = cell(&mut h, vec![Value::Int(9)]);
        let report = check_heap(&h, &[keep]).unwrap();
        assert_eq!(report.live_blocks, 1, "listed blocks are not live");
        assert_eq!(report.cycle_garbage, 0, "listed blocks are not garbage");
    }

    #[test]
    fn claimed_cells_need_a_token_root() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let a = cell(&mut h, vec![]);
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        // With the token as root: fine.
        let Value::Token(Some(t)) = tok else { panic!() };
        check_heap(&h, &[t]).unwrap();
        // Without: a leak of reserved memory.
        let err = check_heap(&h, &[]).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }

    #[test]
    fn local_heap_audit_crosses_into_the_shared_segment() {
        use std::sync::Arc;
        let mut h = Heap::new(ReclaimMode::Rc);
        let mut seg = SharedHeap::new();
        let payload = cell(&mut h, vec![Value::Int(5)]);
        let shared = h.mark_shared(Value::Ref(payload), &mut seg).unwrap();
        h.attach_shared(Arc::new(seg));
        // A local block holding a shared reference: reachable, counts
        // adequate across the segment boundary.
        let Value::Ref(saddr) = shared else { panic!() };
        let holder = cell(&mut h, vec![shared]);
        let report = check_heap(&h, &[holder]).unwrap();
        assert_eq!(report.live_blocks, 1, "shared blocks audit separately");
        // Two local references with a shared count of 1: undercount.
        let holder2 = cell(&mut h, vec![shared]);
        let err = check_heap(&h, &[holder, holder2]).unwrap_err();
        assert!(err.contains("references"), "{err}");
        let _ = saddr;
    }

    #[test]
    fn shared_join_audit_passes_when_workers_drained_the_segment() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let mut seg = SharedHeap::new();
        let inner = cell(&mut h, vec![Value::Int(1)]);
        let root = cell(&mut h, vec![Value::Ref(inner)]);
        let shared = h.mark_shared(Value::Ref(root), &mut seg).unwrap();
        let seg = std::sync::Arc::new(seg);
        h.attach_shared(seg.clone());
        h.drop_value(shared).unwrap();
        let report = check_shared_at_join(&seg).unwrap();
        assert_eq!(report.freed_blocks, 2);
        assert_eq!(report.live_blocks, 0);
    }

    #[test]
    fn shared_join_audit_flags_survivors_but_tolerates_pinned() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let mut seg = SharedHeap::new();
        let a = cell(&mut h, vec![Value::Int(1)]);
        let _shared = h.mark_shared(Value::Ref(a), &mut seg).unwrap();
        // One outstanding reference never dropped: a leak at join.
        let err = check_shared_at_join(&seg).unwrap_err();
        assert!(err.contains("still live"), "{err}");
        // A pinned survivor is fine.
        let mut h2 = Heap::new(ReclaimMode::Rc);
        let mut seg2 = SharedHeap::new();
        let child = cell(&mut h2, vec![Value::Int(2)]);
        let b = cell(&mut h2, vec![Value::Ref(child)]);
        h2.block_mut(b).unwrap().header = crate::heap::STICKY;
        let _shared = h2.mark_shared(Value::Ref(b), &mut seg2).unwrap();
        let report = check_shared_at_join(&seg2).unwrap();
        assert_eq!(report.live_blocks, 2);
        assert_eq!(report.pinned_blocks, 2, "pinned root and its holdings");
    }
}
