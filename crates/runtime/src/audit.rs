//! The garbage-free / soundness auditor — executable counterparts of the
//! paper's theorems, checked against live machine states:
//!
//! * **Soundness (Thm. 1)** is enforced continuously by the
//!   generation-checked heap: a dangling reference in generated code is
//!   a deterministic [`crate::RuntimeError::UseAfterFree`], never corruption.
//! * **Count adequacy (Appendix D.3, lower bound)**: every live block's
//!   reference count is at least the number of references to it from
//!   other live blocks — a count below that would inevitably
//!   use-after-free later.
//! * **Garbage-freeness (Thm. 2/4)**: every live block is reachable
//!   from the machine's roots (environments, saved frames, reuse
//!   tokens). Blocks held alive only by a mutable-reference cycle are
//!   reported separately — the paper's §2.7.4 explicitly leaves cycles
//!   to the programmer, and the generalized theorem statement allows
//!   "reachable **or** part of a cycle".
//!
//! The machine invokes [`check_machine`] every `audit_every` steps (at
//! states that are not at a `dup`/`drop`, matching the side condition of
//! Theorem 4). The strongest end-to-end check is performed by the test
//! suites: after a run completes and the result is dropped, the heap
//! must be **empty**.

use crate::heap::Heap;
use crate::machine::Machine;
use crate::value::{Addr, Value};
use std::collections::{HashMap, HashSet};

/// Outcome of a heap audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Live blocks inspected.
    pub live_blocks: u64,
    /// Blocks kept alive only by a mutable-reference cycle (tolerated,
    /// per §2.7.4).
    pub cycle_garbage: u64,
}

/// Audits a machine state; returns a report or a violation description.
pub fn check_machine(m: &Machine<'_>) -> Result<AuditReport, String> {
    let roots: Vec<Addr> = m
        .root_values()
        .filter_map(root_addr)
        .filter(|a| m.heap.block(*a).is_ok()) // generation-stale slots are not roots
        .collect();
    check_heap(&m.heap, &roots)
}

fn root_addr(v: &Value) -> Option<Addr> {
    match v {
        Value::Ref(a) => Some(*a),
        Value::Token(Some(a)) => Some(*a),
        _ => None,
    }
}

/// Audits a heap against an explicit root set.
pub fn check_heap(heap: &Heap, roots: &[Addr]) -> Result<AuditReport, String> {
    // 1. Count internal references (fields of live, unclaimed blocks).
    let mut internal: HashMap<u32, u32> = HashMap::new();
    let mut live = Vec::new();
    for (addr, block) in heap.iter_live() {
        live.push(addr);
        if block.header == 0 {
            continue; // claimed by a reuse token: contents meaningless
        }
        for f in block.fields.iter() {
            if let Value::Ref(child) = f {
                if heap.block(*child).is_err() {
                    return Err(format!("block {addr} holds dangling reference {child}"));
                }
                *internal.entry(child.index).or_insert(0) += 1;
            }
        }
    }

    // 2. Count adequacy: header magnitude ≥ internal references.
    if heap.rc_active() {
        for (addr, block) in heap.iter_live() {
            if block.header == 0 {
                continue;
            }
            let count = block.header.unsigned_abs();
            let refs = internal.get(&addr.index).copied().unwrap_or(0);
            if count < refs {
                return Err(format!(
                    "block {addr} has count {count} but {refs} internal references"
                ));
            }
        }
    }

    // 3. Reachability from roots.
    let mut seen: HashSet<u32> = HashSet::new();
    let mut work: Vec<Addr> = roots.to_vec();
    while let Some(addr) = work.pop() {
        if !seen.insert(addr.index) {
            continue;
        }
        let Ok(block) = heap.block(addr) else {
            continue;
        };
        if block.header == 0 {
            continue; // claimed cells hold no real references
        }
        for f in block.fields.iter() {
            if let Value::Ref(child) = f {
                work.push(*child);
            }
        }
    }
    let unreachable: Vec<Addr> = live
        .iter()
        .copied()
        .filter(|a| !seen.contains(&a.index))
        .collect();

    // 4. Unreachable blocks are tolerated only when a cycle sustains
    //    them (mutable references, §2.7.4).
    let mut cycle_ok: HashSet<u32> = HashSet::new();
    for a in &unreachable {
        if cycle_ok.contains(&a.index) {
            continue;
        }
        if on_cycle(heap, *a) {
            // Everything reachable from a cycle node is cycle garbage.
            let mut work = vec![*a];
            while let Some(n) = work.pop() {
                if !cycle_ok.insert(n.index) {
                    continue;
                }
                if let Ok(b) = heap.block(n) {
                    for f in b.fields.iter() {
                        if let Value::Ref(c) = f {
                            work.push(*c);
                        }
                    }
                }
            }
        }
    }
    let mut cycle_garbage = 0;
    for a in &unreachable {
        if cycle_ok.contains(&a.index) {
            cycle_garbage += 1;
        } else if heap.rc_active() {
            return Err(format!(
                "garbage-free violation: live block {a} is unreachable from the roots"
            ));
        }
    }

    Ok(AuditReport {
        live_blocks: live.len() as u64,
        cycle_garbage,
    })
}

/// Can `start` reach itself?
fn on_cycle(heap: &Heap, start: Addr) -> bool {
    let mut seen = HashSet::new();
    let mut work = Vec::new();
    if let Ok(b) = heap.block(start) {
        for f in b.fields.iter() {
            if let Value::Ref(c) = f {
                work.push(*c);
            }
        }
    }
    while let Some(n) = work.pop() {
        if n.index == start.index {
            return true;
        }
        if !seen.insert(n.index) {
            continue;
        }
        if let Ok(b) = heap.block(n) {
            for f in b.fields.iter() {
                if let Value::Ref(c) = f {
                    work.push(*c);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{BlockTag, ReclaimMode};
    use perceus_core::ir::CtorId;

    fn cell(h: &mut Heap, fields: Vec<Value>) -> Addr {
        h.alloc(BlockTag::Ctor(CtorId(0)), fields.into_boxed_slice())
    }

    #[test]
    fn accepts_reachable_heap() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let inner = cell(&mut h, vec![Value::Int(1)]);
        let outer = cell(&mut h, vec![Value::Ref(inner)]);
        let report = check_heap(&h, &[outer]).unwrap();
        assert_eq!(report.live_blocks, 2);
        assert_eq!(report.cycle_garbage, 0);
    }

    #[test]
    fn detects_leak() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let _leaked = cell(&mut h, vec![]);
        let err = check_heap(&h, &[]).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }

    #[test]
    fn detects_undercount() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let child = cell(&mut h, vec![]);
        let a = cell(&mut h, vec![Value::Ref(child)]);
        let b = cell(&mut h, vec![Value::Ref(child)]);
        // child's count is 1 but two blocks reference it.
        let err = check_heap(&h, &[a, b]).unwrap_err();
        assert!(err.contains("internal references"), "{err}");
    }

    #[test]
    fn tolerates_ref_cycles() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let r = h.alloc(BlockTag::MutRef, vec![Value::Unit].into_boxed_slice());
        let holder = cell(&mut h, vec![Value::Ref(r)]);
        h.block_mut(r).unwrap().fields[0] = Value::Ref(holder);
        // Neither is reachable from any root, but they sustain each
        // other — the §2.7.4 situation.
        let report = check_heap(&h, &[]).unwrap();
        assert_eq!(report.cycle_garbage, 2);
    }

    #[test]
    fn freelisted_blocks_are_invisible_to_the_audit() {
        // Populate several size-class free lists, then audit: a listed
        // slot is neither live (no count/reachability obligations) nor
        // leaked — the allocator is invisible to the garbage-free story.
        let mut h = Heap::new(ReclaimMode::Rc);
        for n in 0..4 {
            let fields: Vec<Value> = (0..n).map(Value::Int).collect();
            let a = cell(&mut h, fields);
            h.drop_value(Value::Ref(a)).unwrap();
        }
        assert_eq!(h.listed_blocks(), 4);
        let keep = cell(&mut h, vec![Value::Int(9)]);
        let report = check_heap(&h, &[keep]).unwrap();
        assert_eq!(report.live_blocks, 1, "listed blocks are not live");
        assert_eq!(report.cycle_garbage, 0, "listed blocks are not garbage");
    }

    #[test]
    fn claimed_cells_need_a_token_root() {
        let mut h = Heap::new(ReclaimMode::Rc);
        let a = cell(&mut h, vec![]);
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        // With the token as root: fine.
        let Value::Token(Some(t)) = tok else { panic!() };
        check_heap(&h, &[t]).unwrap();
        // Without: a leak of reserved memory.
        let err = check_heap(&h, &[]).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }
}
