//! A bounded event tracer for the reference-counting heap — the
//! debugging aid a production implementation of Perceus needs: when a
//! use-after-free or leak surfaces, the last N reference-count events
//! explain *how* the count got there.
//!
//! Tracing is off by default and costs one branch per heap operation
//! when enabled; events live in a fixed ring buffer, so arbitrarily
//! long runs stay bounded.

use crate::value::Addr;
use std::collections::VecDeque;
use std::fmt;

/// One reference-count event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Fresh allocation (block words).
    Alloc(Addr, u64),
    /// Allocation served from a size-class free list (block words).
    Recycle(Addr, u64),
    /// Construction into a reuse token.
    Reuse(Addr),
    /// `dup` (header after the operation).
    Dup(Addr, i32),
    /// `drop` decrement (header after the operation).
    Drop(Addr, i32),
    /// `decref` (header after).
    DecRef(Addr, i32),
    /// Cell freed (by zero count, explicit free, or token release).
    Free(Addr),
    /// Cell claimed as a reuse token.
    Claim(Addr),
    /// Marked thread-shared.
    Share(Addr),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Alloc(a, w) => write!(f, "alloc  {a} ({w} words)"),
            Event::Recycle(a, w) => write!(f, "recyc  {a} ({w} words, free list)"),
            Event::Reuse(a) => write!(f, "reuse  {a}"),
            Event::Dup(a, rc) => write!(f, "dup    {a} -> rc {rc}"),
            Event::Drop(a, rc) => write!(f, "drop   {a} -> rc {rc}"),
            Event::DecRef(a, rc) => write!(f, "decref {a} -> rc {rc}"),
            Event::Free(a) => write!(f, "free   {a}"),
            Event::Claim(a) => write!(f, "claim  {a} (reuse token)"),
            Event::Share(a) => write!(f, "share  {a} (thread-shared)"),
        }
    }
}

/// A fixed-capacity ring of recent events.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<Event>,
    capacity: usize,
    /// Total events observed (including evicted ones).
    pub total: u64,
}

impl Trace {
    /// Creates a tracer that retains the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Records an event.
    pub fn record(&mut self, e: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(e);
        self.total += 1;
    }

    /// Discards every retained event, keeping the capacity (used when a
    /// serving worker recycles its heap between sessions).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// The retained events touching one address, oldest first.
    pub fn history_of(&self, addr: Addr) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| {
                matches!(e,
                    Event::Alloc(a, _) | Event::Recycle(a, _) | Event::Reuse(a)
                    | Event::Dup(a, _) | Event::Drop(a, _) | Event::DecRef(a, _)
                    | Event::Free(a) | Event::Claim(a) | Event::Share(a)
                    if a.index() == addr.index())
            })
            .copied()
            .collect()
    }

    /// Renders the tail of the trace (most recent `n` events).
    pub fn render_tail(&self, n: usize) -> String {
        let skip = self.events.len().saturating_sub(n);
        let mut out = String::new();
        for e in self.events.iter().skip(skip) {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{BlockTag, Heap, ReclaimMode};
    use crate::Value;
    use perceus_core::ir::CtorId;

    #[test]
    fn ring_is_bounded() {
        let mut t = Trace::new(3);
        for i in 0..10 {
            t.record(Event::Free(Addr { index: i, gen: 0 }));
        }
        assert_eq!(t.events().count(), 3);
        assert_eq!(t.total, 10);
        let first = *t.events().next().unwrap();
        assert_eq!(first, Event::Free(Addr { index: 7, gen: 0 }));
    }

    #[test]
    fn heap_records_when_enabled() {
        let mut h = Heap::new(ReclaimMode::Rc);
        h.enable_trace(64);
        let a = h.alloc(BlockTag::Ctor(CtorId(2)), Box::new([Value::Int(1)]));
        h.dup(Value::Ref(a)).unwrap();
        h.drop_value(Value::Ref(a)).unwrap();
        h.drop_value(Value::Ref(a)).unwrap();
        let trace = h.trace().expect("tracing enabled");
        let hist = trace.history_of(a);
        assert!(matches!(hist[0], Event::Alloc(..)), "{hist:?}");
        assert!(matches!(hist[1], Event::Dup(_, 2)), "{hist:?}");
        assert!(matches!(hist[2], Event::Drop(_, 1)), "{hist:?}");
        assert!(hist.iter().any(|e| matches!(e, Event::Free(_))), "{hist:?}");
    }

    #[test]
    fn reuse_and_claim_are_traced() {
        let mut h = Heap::new(ReclaimMode::Rc);
        h.enable_trace(64);
        let a = h.alloc(BlockTag::Ctor(CtorId(2)), Box::new([Value::Int(1)]));
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        let Value::Token(Some(t)) = tok else { panic!() };
        h.alloc_into(t, CtorId(2), &[Value::Int(2)], &[]).unwrap();
        let trace = h.trace().expect("tracing enabled");
        let hist = trace.history_of(a);
        assert!(
            hist.iter().any(|e| matches!(e, Event::Claim(_))),
            "{hist:?}"
        );
        assert!(
            hist.iter().any(|e| matches!(e, Event::Reuse(_))),
            "{hist:?}"
        );
        h.drop_value(Value::Ref(a)).unwrap();
    }

    #[test]
    fn freelist_recycling_is_traced() {
        let mut h = Heap::new(ReclaimMode::Rc);
        h.enable_trace(64);
        let a = h.alloc(BlockTag::Ctor(CtorId(2)), Box::new([Value::Int(1)]));
        h.drop_value(Value::Ref(a)).unwrap();
        let b = h.alloc_slice(BlockTag::Ctor(CtorId(2)), &[Value::Int(2)]);
        let trace = h.trace().expect("tracing enabled");
        let hist = trace.history_of(b);
        assert!(
            hist.iter().any(|e| matches!(e, Event::Recycle(_, 2))),
            "{hist:?}"
        );
        h.drop_value(Value::Ref(b)).unwrap();
    }

    #[test]
    fn render_tail_is_readable() {
        let mut t = Trace::new(8);
        t.record(Event::Alloc(Addr { index: 1, gen: 0 }, 3));
        t.record(Event::Share(Addr { index: 1, gen: 0 }));
        let s = t.render_tail(10);
        assert!(s.contains("alloc"), "{s}");
        assert!(s.contains("thread-shared"), "{s}");
    }
}
