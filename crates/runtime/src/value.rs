//! Runtime values.
//!
//! Following Koka's data representation, values are one machine word:
//! integers and unit are unboxed, arity-0 constructors are tagged
//! immediates ("singletons" — `Nil`, `Leaf`, `True` never allocate),
//! and everything else is a reference into the [`Heap`](crate::heap::Heap).

use perceus_core::ir::{CtorId, FunId};
use std::fmt;

/// A generation-checked heap address.
///
/// The generation is bumped every time a cell is freed, so a stale
/// address can never be confused with the cell's next tenant. Every heap
/// operation validates the generation, which turns any use-after-free in
/// generated code into a deterministic runtime error instead of silent
/// corruption — the dynamic counterpart of the paper's soundness theorem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    pub(crate) index: u32,
    pub(crate) gen: u32,
}

impl Addr {
    /// High bit of `index`: set for blocks in the thread-shared segment
    /// ([`crate::heap::shared::SharedHeap`]); clear for thread-local
    /// blocks. The two segments therefore share one address space and
    /// one `Value::Ref` representation, and the fast/slow split of
    /// §2.7.2 is a single branch on this bit plus the header sign.
    pub(crate) const SHARED_BIT: u32 = 1 << 31;

    /// The slot index (for diagnostics).
    pub fn index(self) -> u32 {
        self.index
    }

    /// True when this address points into the thread-shared segment.
    pub fn is_shared(self) -> bool {
        self.index & Self::SHARED_BIT != 0
    }

    /// Builds a shared-segment address for `slot`, stamped with the
    /// slot's generation (bumped when the slot's storage is reclaimed,
    /// so a stale shared address fails deterministically even across a
    /// hypothetical slot reuse).
    pub(crate) fn shared(slot: u32, gen: u32) -> Addr {
        debug_assert!(slot & Self::SHARED_BIT == 0, "shared segment overflow");
        Addr {
            index: slot | Self::SHARED_BIT,
            gen,
        }
    }

    /// The slot index within the shared segment.
    pub(crate) fn shared_slot(self) -> usize {
        (self.index & !Self::SHARED_BIT) as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_shared() {
            write!(f, "0x{:x}s", self.shared_slot())
        } else {
            write!(f, "0x{:x}g{}", self.index, self.gen)
        }
    }
}

/// A machine value (one word).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Value {
    /// The unit value.
    #[default]
    Unit,
    /// Unboxed integer.
    Int(i64),
    /// A singleton (arity-0) constructor — an immediate, never counted.
    Enum(CtorId),
    /// A heap block: constructor, closure, or mutable reference.
    Ref(Addr),
    /// A top-level function used as a value (globals are not counted).
    Global(FunId),
    /// A reuse token (§2.4): memory to build into, or null.
    Token(Option<Addr>),
    /// A weak reference to a *shared-segment* block (the CIRC-style
    /// `Weak` of §2.7.3's cycle scenario): owns one weak count, never
    /// keeps the block alive, and upgrades to a strong reference only
    /// while the block still lives — deterministically failing once it
    /// is dead. The runtime mints these via
    /// [`crate::heap::SharedHeap::downgrade`]; surface programs never
    /// construct them.
    Weak(Addr),
}

impl Value {
    /// True for values that participate in reference counting.
    pub fn is_ref(&self) -> bool {
        matches!(self, Value::Ref(_))
    }

    /// The address, if this is a heap reference.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Value::Ref(a) => Some(*a),
            _ => None,
        }
    }

    /// Interprets the value as a boolean (the built-in `bool` type).
    pub fn as_bool(&self) -> Option<bool> {
        use perceus_core::ir::TypeTable;
        match self {
            Value::Enum(c) if *c == TypeTable::TRUE => Some(true),
            Value::Enum(c) if *c == TypeTable::FALSE => Some(false),
            _ => None,
        }
    }

    /// Interprets the value as an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Enum(c) => write!(f, "#{}", c.0),
            Value::Ref(a) => write!(f, "@{a}"),
            Value::Global(g) => write!(f, "fun{}", g.0),
            Value::Token(Some(a)) => write!(f, "ru@{a}"),
            Value::Token(None) => f.write_str("ru@NULL"),
            Value::Weak(a) => write!(f, "weak@{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_core::ir::TypeTable;

    #[test]
    fn bool_interpretation() {
        assert_eq!(Value::Enum(TypeTable::TRUE).as_bool(), Some(true));
        assert_eq!(Value::Enum(TypeTable::FALSE).as_bool(), Some(false));
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn only_refs_are_counted() {
        assert!(Value::Ref(Addr { index: 0, gen: 0 }).is_ref());
        assert!(!Value::Int(3).is_ref());
        assert!(!Value::Enum(CtorId(4)).is_ref());
        assert!(!Value::Global(FunId(0)).is_ref());
    }
}
