//! # perceus-runtime
//!
//! The runtime half of the Perceus reproduction:
//!
//! * [`heap`] — the reference-counted heap of Fig. 7: signed headers
//!   with the thread-shared negative encoding and sticky range of
//!   §2.7.2, worklist-based recursive `drop`, reuse tokens (§2.4),
//!   generation-checked addresses; plus [`heap::shared`], the
//!   atomic-header thread-shared segment and the `mark_shared` barrier
//!   that moves values across thread boundaries;
//! * [`code`] — the backend: core IR → slot-resolved executable form;
//! * [`machine`] — a tail-call-safe abstract machine implementing the
//!   (appᵣ)/(matchᵣ) conventions;
//! * [`gc`] — a mark–sweep collector (the tracing-GC baseline);
//! * [`standard`] — the plain semantics of Fig. 6, the differential
//!   oracle for Theorem 1;
//! * [`audit`] — executable checks for the garbage-free theorems
//!   (Thm. 2/4) and the exact-count property (Appendix D.3);
//! * [`profile`] — the attributed profiler: every heap/RC event
//!   credited to the executing function (calling-context tree,
//!   per-constructor reuse rates, per-function peak liveness), exact
//!   against [`heap::Stats`] and free when disabled.
//!
//! Typical use (see `perceus-suite` for a one-call driver):
//!
//! ```
//! use perceus_core::{Pipeline, PassConfig};
//! use perceus_core::ir::builder::ProgramBuilder;
//! use perceus_core::ir::Expr;
//! use perceus_runtime::{code, machine::{Machine, RunConfig}, heap::ReclaimMode};
//!
//! let mut pb = ProgramBuilder::new();
//! let x = pb.fresh("x");
//! let id = pb.fun("id", vec![x.clone()], Expr::Var(x));
//! pb.entry(id);
//! let program = Pipeline::new(PassConfig::perceus()).run(pb.finish()).unwrap();
//! let compiled = code::compile(&program).unwrap();
//! let mut m = Machine::new(&compiled, ReclaimMode::Rc, RunConfig::default());
//! let out = m.run_entry(vec![perceus_runtime::value::Value::Int(7)]).unwrap();
//! assert_eq!(out.as_int(), Some(7));
//! ```

pub mod audit;
pub mod code;
pub mod error;
pub mod gc;
pub mod heap;
pub mod machine;
pub mod profile;
pub mod standard;
pub mod trace;
pub mod value;

pub use error::RuntimeError;
pub use heap::{Heap, ReclaimMode, SharedHeap, Stats, SCHEDULE_KEYS};
pub use machine::{Checkpoint, DeepValue, Execution, Machine, RunConfig, StepOutcome};
pub use profile::{FrameKind, ProfCounts, ProfMetric, Profiler};
pub use value::Value;
