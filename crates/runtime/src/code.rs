//! Backend compilation: core IR → slot-resolved executable code.
//!
//! Variables become dense frame slots (the moral equivalent of Koka
//! compiling to C locals), lambdas are lifted into a code table, and
//! atoms are pre-evaluated into immediate [`Value`]s where possible.
//! The abstract machine in [`crate::machine`] interprets this form.

use crate::error::RuntimeError;
use crate::heap::LamId;
use crate::value::Value;
use perceus_core::ir::expr::{Expr, Lit, PrimOp};
use perceus_core::ir::{CtorId, FunId, Program, TypeTable, Var};
use std::collections::HashMap;
use std::sync::Arc;

/// A frame slot index.
pub type Slot = u32;

/// A pre-resolved atom: either a slot read or an immediate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Atom {
    /// Read the value in a frame slot.
    Slot(Slot),
    /// An immediate (literal, global, or singleton constructor).
    Const(Value),
}

/// One arm of a compiled match.
#[derive(Debug, Clone)]
pub struct RArm {
    /// Constructor matched (singletons compare by id, blocks by tag).
    pub ctor: CtorId,
    /// Destination slots for the fields (`None` = field not bound).
    pub binders: Vec<Option<Slot>>,
    /// Arm body.
    pub body: RExpr,
}

/// Slot-resolved executable expressions.
#[derive(Debug, Clone)]
pub enum RExpr {
    /// Produce an atom's value.
    Atom(Atom),
    /// Indirect application of a closure or global value.
    App { fun: Atom, args: Vec<Atom> },
    /// Direct call of a top-level function.
    Call { fun: FunId, args: Vec<Atom> },
    /// Primitive application.
    Prim { op: PrimOp, args: Vec<Atom> },
    /// Closure allocation (consumes the captured values' ownership).
    MkClosure { lam: LamId, captures: Vec<Slot> },
    /// Constructor allocation; `reuse` names a token slot; `skip` is the
    /// reuse-specialization mask (§2.5).
    Con {
        ctor: CtorId,
        args: Vec<Atom>,
        reuse: Option<Slot>,
        skip: Arc<[bool]>,
    },
    /// `val slot = rhs; body`.
    Let {
        slot: Slot,
        rhs: Box<RExpr>,
        body: Box<RExpr>,
    },
    /// `rhs; body` (rhs value discarded).
    Seq(Box<RExpr>, Box<RExpr>),
    /// Flat match on the value in a slot.
    Match {
        scrut: Slot,
        arms: Vec<RArm>,
        default: Option<Box<RExpr>>,
    },
    /// Runtime failure.
    Abort(Arc<str>),
    /// `dup`.
    Dup(Slot, Box<RExpr>),
    /// `drop`.
    Drop(Slot, Box<RExpr>),
    /// `val token = drop-reuse var; body`.
    DropReuse {
        var: Slot,
        token: Slot,
        body: Box<RExpr>,
    },
    /// Specialized cell free (unique fast path).
    Free(Slot, Box<RExpr>),
    /// Specialized decrement (shared slow path).
    DecRef(Slot, Box<RExpr>),
    /// Release an unused reuse token.
    DropToken(Slot, Box<RExpr>),
    /// The uniqueness test of Fig. 1c/1f.
    IsUnique {
        var: Slot,
        unique: Box<RExpr>,
        shared: Box<RExpr>,
    },
    /// `&x` — claim the cell as a token.
    TokenOf(Slot),
    /// The null token.
    NullToken,
}

/// A compiled top-level function.
#[derive(Debug, Clone)]
pub struct CodeFun {
    /// Source name.
    pub name: Arc<str>,
    /// Parameter count (parameters live in slots `0..arity`).
    pub arity: usize,
    /// Total frame slots.
    pub nslots: usize,
    /// Body.
    pub body: RExpr,
}

/// A compiled lambda. Captures live in slots `0..ncaptures`, parameters
/// in `ncaptures..ncaptures+nparams`.
#[derive(Debug, Clone)]
pub struct CodeLam {
    /// Capture count.
    pub ncaptures: usize,
    /// Parameter count.
    pub nparams: usize,
    /// Total frame slots.
    pub nslots: usize,
    /// Body.
    pub body: RExpr,
}

/// A fully compiled program, ready for the machine.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Type table (for constructor arities and diagnostics).
    pub types: TypeTable,
    /// Functions, indexed by `FunId`.
    pub funs: Vec<CodeFun>,
    /// Lambdas, indexed by `LamId`.
    pub lambdas: Vec<CodeLam>,
    /// The entry point.
    pub entry: Option<FunId>,
    /// Source byte spans of the functions, indexed like `funs` (empty
    /// for builder-made programs). Carried verbatim from
    /// [`Program::fun_spans`] so profiler reports can point at source.
    pub fun_spans: Vec<(u32, u32)>,
    /// Per-function borrow masks (indexed like `funs`), carried from
    /// the borrow-inference pass: `fun_borrows[f][i]` is true when
    /// parameter `i` of function `f` is *borrowed* — the function never
    /// consumes it, so a caller that retains ownership can pass a
    /// shared value without any `dup`/`drop` at all (the zero-RMW
    /// snapshot-read calling convention). Empty masks mean "all owned"
    /// (borrow inference off).
    pub fun_borrows: Vec<Box<[bool]>>,
    /// Unique identity of this compiled instance (see [`Compiled::uid`]).
    uid: CodeUid,
}

impl Compiled {
    /// Looks up a function by name.
    pub fn find_fun(&self, name: &str) -> Option<FunId> {
        self.funs
            .iter()
            .position(|f| &*f.name == name)
            .map(|i| FunId(i as u32))
    }

    /// The borrow mask of `f`'s parameters, if borrow inference ran
    /// (`None` means every parameter is owned).
    pub fn borrow_mask(&self, f: FunId) -> Option<&[bool]> {
        self.fun_borrows
            .get(f.0 as usize)
            .filter(|m| !m.is_empty())
            .map(|m| &m[..])
    }

    /// True when parameter `i` of `f` is borrowed (never consumed by
    /// the function — callers retain ownership across the call).
    pub fn param_borrowed(&self, f: FunId, i: usize) -> bool {
        self.borrow_mask(f).is_some_and(|m| m.get(i) == Some(&true))
    }

    /// A process-unique id for this `Compiled` *instance*. Cloning
    /// mints a fresh id (a clone's expression nodes live at different
    /// addresses), which lets a parked [`crate::machine::Checkpoint`]
    /// prove it is being resumed against the very program it was
    /// suspended from before any erased code pointer is followed.
    pub fn uid(&self) -> u64 {
        self.uid.0
    }
}

/// Identity token for one `Compiled` value: fresh on construction *and*
/// on clone, so two structurally identical programs never share a uid.
#[derive(Debug)]
struct CodeUid(u64);

impl CodeUid {
    fn fresh() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        CodeUid(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl Clone for CodeUid {
    fn clone(&self) -> Self {
        CodeUid::fresh()
    }
}

/// Compiles a (pass-processed) core program to executable form.
pub fn compile(p: &Program) -> Result<Compiled, RuntimeError> {
    let mut out = Compiled {
        types: p.types.clone(),
        funs: Vec::with_capacity(p.funs.len()),
        lambdas: Vec::new(),
        entry: p.entry,
        fun_spans: p.fun_spans.clone(),
        fun_borrows: p
            .funs()
            .map(|(id, _)| {
                p.borrow_mask(id)
                    .map(|m| m.to_vec().into_boxed_slice())
                    .unwrap_or_default()
            })
            .collect(),
        uid: CodeUid::fresh(),
    };
    for (_, f) in p.funs() {
        let mut cx = FrameCx::new(&p.types);
        for par in &f.params {
            cx.bind(par);
        }
        let body = cx.expr(&f.body, &mut out.lambdas)?;
        out.funs.push(CodeFun {
            name: f.name.clone(),
            arity: f.params.len(),
            nslots: cx.next as usize,
            body,
        });
    }
    Ok(out)
}

struct FrameCx<'t> {
    types: &'t TypeTable,
    slots: HashMap<u32, Slot>,
    next: Slot,
}

impl<'t> FrameCx<'t> {
    fn new(types: &'t TypeTable) -> Self {
        FrameCx {
            types,
            slots: HashMap::new(),
            next: 0,
        }
    }

    fn bind(&mut self, v: &Var) -> Slot {
        let s = self.next;
        self.next += 1;
        self.slots.insert(v.id(), s);
        s
    }

    fn slot(&self, v: &Var) -> Result<Slot, RuntimeError> {
        self.slots
            .get(&v.id())
            .copied()
            .ok_or_else(|| RuntimeError::Internal(format!("unresolved variable {v:?}")))
    }

    fn atom(&self, e: &Expr) -> Result<Atom, RuntimeError> {
        match e {
            Expr::Var(v) => Ok(Atom::Slot(self.slot(v)?)),
            Expr::Lit(Lit::Int(i)) => Ok(Atom::Const(Value::Int(*i))),
            Expr::Lit(Lit::Unit) => Ok(Atom::Const(Value::Unit)),
            Expr::Global(f) => Ok(Atom::Const(Value::Global(*f))),
            Expr::Con { ctor, args, .. }
                if args.is_empty() && self.types.ctor(*ctor).arity == 0 =>
            {
                Ok(Atom::Const(Value::Enum(*ctor)))
            }
            other => Err(RuntimeError::Internal(format!(
                "non-atomic argument (not in ANF): {other:?}"
            ))),
        }
    }

    fn atoms(&self, es: &[Expr]) -> Result<Vec<Atom>, RuntimeError> {
        es.iter().map(|e| self.atom(e)).collect()
    }

    fn expr(&mut self, e: &Expr, lambdas: &mut Vec<CodeLam>) -> Result<RExpr, RuntimeError> {
        match e {
            Expr::Var(_) | Expr::Lit(_) | Expr::Global(_) => Ok(RExpr::Atom(self.atom(e)?)),
            Expr::App(f, args) => Ok(RExpr::App {
                fun: self.atom(f)?,
                args: self.atoms(args)?,
            }),
            Expr::Call(f, args) => Ok(RExpr::Call {
                fun: *f,
                args: self.atoms(args)?,
            }),
            Expr::Prim(op, args) => Ok(RExpr::Prim {
                op: *op,
                args: self.atoms(args)?,
            }),
            Expr::Lam(lam) => {
                // Captures are read from the *enclosing* frame.
                let cap_slots: Vec<Slot> = lam
                    .captures
                    .iter()
                    .map(|c| self.slot(c))
                    .collect::<Result<_, _>>()?;
                let mut inner = FrameCx::new(self.types);
                for c in &lam.captures {
                    inner.bind(c);
                }
                for par in &lam.params {
                    inner.bind(par);
                }
                let body = inner.expr(&lam.body, lambdas)?;
                let id = LamId(lambdas.len() as u32);
                lambdas.push(CodeLam {
                    ncaptures: lam.captures.len(),
                    nparams: lam.params.len(),
                    nslots: inner.next as usize,
                    body,
                });
                Ok(RExpr::MkClosure {
                    lam: id,
                    captures: cap_slots,
                })
            }
            Expr::Con {
                ctor,
                args,
                reuse,
                skip,
            } => {
                if args.is_empty() && self.types.ctor(*ctor).arity == 0 {
                    return Ok(RExpr::Atom(Atom::Const(Value::Enum(*ctor))));
                }
                Ok(RExpr::Con {
                    ctor: *ctor,
                    args: self.atoms(args)?,
                    reuse: reuse.as_ref().map(|t| self.slot(t)).transpose()?,
                    skip: skip.clone().into(),
                })
            }
            Expr::Let { var, rhs, body } => {
                let rhs = self.expr(rhs, lambdas)?;
                let slot = self.bind(var);
                let body = self.expr(body, lambdas)?;
                Ok(RExpr::Let {
                    slot,
                    rhs: Box::new(rhs),
                    body: Box::new(body),
                })
            }
            Expr::Seq(a, b) => Ok(RExpr::Seq(
                Box::new(self.expr(a, lambdas)?),
                Box::new(self.expr(b, lambdas)?),
            )),
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                let scrut = self.slot(scrutinee)?;
                let mut rarms = Vec::with_capacity(arms.len());
                for arm in arms {
                    let binders: Vec<Option<Slot>> = arm
                        .binders
                        .iter()
                        .map(|b| b.as_ref().map(|v| self.bind(v)))
                        .collect();
                    if let Some(t) = &arm.reuse_token {
                        return Err(RuntimeError::Internal(format!(
                            "unlowered reuse annotation @{t:?} reached the backend"
                        )));
                    }
                    let body = self.expr(&arm.body, lambdas)?;
                    rarms.push(RArm {
                        ctor: arm.ctor,
                        binders,
                        body,
                    });
                }
                let default = match default {
                    Some(d) => Some(Box::new(self.expr(d, lambdas)?)),
                    None => None,
                };
                Ok(RExpr::Match {
                    scrut,
                    arms: rarms,
                    default,
                })
            }
            Expr::Abort(msg) => Ok(RExpr::Abort(Arc::from(msg.as_str()))),
            Expr::Dup(v, rest) => Ok(RExpr::Dup(
                self.slot(v)?,
                Box::new(self.expr(rest, lambdas)?),
            )),
            Expr::Drop(v, rest) => Ok(RExpr::Drop(
                self.slot(v)?,
                Box::new(self.expr(rest, lambdas)?),
            )),
            Expr::DropReuse { var, token, body } => {
                let var = self.slot(var)?;
                let token = self.bind(token);
                Ok(RExpr::DropReuse {
                    var,
                    token,
                    body: Box::new(self.expr(body, lambdas)?),
                })
            }
            Expr::Free(v, rest) => Ok(RExpr::Free(
                self.slot(v)?,
                Box::new(self.expr(rest, lambdas)?),
            )),
            Expr::DecRef(v, rest) => Ok(RExpr::DecRef(
                self.slot(v)?,
                Box::new(self.expr(rest, lambdas)?),
            )),
            Expr::DropToken(v, rest) => Ok(RExpr::DropToken(
                self.slot(v)?,
                Box::new(self.expr(rest, lambdas)?),
            )),
            Expr::IsUnique {
                var,
                unique,
                shared,
                ..
            } => Ok(RExpr::IsUnique {
                var: self.slot(var)?,
                unique: Box::new(self.expr(unique, lambdas)?),
                shared: Box::new(self.expr(shared, lambdas)?),
            }),
            Expr::TokenOf(v) => Ok(RExpr::TokenOf(self.slot(v)?)),
            Expr::NullToken => Ok(RExpr::NullToken),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_core::ir::builder::ProgramBuilder;
    use perceus_core::ir::Expr;

    #[test]
    fn compiles_simple_function() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let id = pb.fun("id", vec![x.clone()], Expr::Var(x));
        pb.entry(id);
        let c = compile(&pb.finish()).unwrap();
        assert_eq!(c.funs.len(), 1);
        assert_eq!(c.funs[0].arity, 1);
        assert_eq!(c.funs[0].nslots, 1);
        assert!(matches!(c.funs[0].body, RExpr::Atom(Atom::Slot(0))));
        assert_eq!(c.find_fun("id"), Some(id));
    }

    #[test]
    fn singleton_constructors_compile_to_immediates() {
        use perceus_core::ir::builder::con;
        let mut pb = ProgramBuilder::new();
        let (_, ctors) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        pb.fun("f", vec![], con(ctors[0], vec![]));
        let c = compile(&pb.finish()).unwrap();
        assert!(matches!(
            c.funs[0].body,
            RExpr::Atom(Atom::Const(Value::Enum(_)))
        ));
    }

    #[test]
    fn lambdas_are_lifted() {
        use perceus_core::ir::expr::Lambda;
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        let y = pb.fresh("y");
        let lam = Expr::Lam(Lambda {
            params: vec![y.clone()],
            captures: vec![x.clone()],
            body: Box::new(Expr::Var(x.clone())),
        });
        pb.fun("f", vec![x.clone()], lam);
        let c = compile(&pb.finish()).unwrap();
        assert_eq!(c.lambdas.len(), 1);
        assert_eq!(c.lambdas[0].ncaptures, 1);
        assert_eq!(c.lambdas[0].nparams, 1);
        assert!(matches!(
            c.funs[0].body,
            RExpr::MkClosure { captures: ref cs, .. } if cs == &vec![0]
        ));
    }

    #[test]
    fn rejects_non_anf() {
        use perceus_core::ir::expr::PrimOp;
        let mut pb = ProgramBuilder::new();
        pb.fun(
            "f",
            vec![],
            Expr::Prim(
                PrimOp::Add,
                vec![
                    Expr::Prim(PrimOp::Add, vec![Expr::int(1), Expr::int(2)]),
                    Expr::int(3),
                ],
            ),
        );
        assert!(compile(&pb.finish()).is_err());
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use perceus_core::ir::builder::ProgramBuilder;
    use perceus_core::ir::Expr;
    use perceus_core::passes::{PassConfig, Pipeline};
    use perceus_core::Program;

    fn compile_map(config: PassConfig) -> Compiled {
        let mut pb = ProgramBuilder::new();
        let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
        let (nil, cons) = (cs[0], cs[1]);
        let xs = pb.fresh("xs");
        let f = pb.fresh("f");
        let x = pb.fresh("x");
        let xx = pb.fresh("xx");
        let map = pb.declare("map", vec![xs.clone(), f.clone()]);
        use perceus_core::ir::builder::{arm, arm0, con};
        pb.set_body(
            map,
            Expr::Match {
                scrutinee: xs.clone(),
                arms: vec![
                    arm(
                        cons,
                        vec![x.clone(), xx.clone()],
                        con(
                            cons,
                            vec![
                                Expr::App(
                                    Box::new(Expr::Var(f.clone())),
                                    vec![Expr::Var(x.clone())],
                                ),
                                Expr::Call(map, vec![Expr::Var(xx.clone()), Expr::Var(f.clone())]),
                            ],
                        ),
                    ),
                    arm0(nil, con(nil, vec![])),
                ],
                default: None,
            },
        );
        pb.entry(map);
        let p: Program = Pipeline::new(config).run(pb.finish()).unwrap();
        compile(&p).unwrap()
    }

    fn count_nodes(e: &RExpr, pred: &dyn Fn(&RExpr) -> bool) -> usize {
        let mut n = usize::from(pred(e));
        match e {
            RExpr::Let { rhs, body, .. } => {
                n += count_nodes(rhs, pred) + count_nodes(body, pred);
            }
            RExpr::Seq(a, b) => n += count_nodes(a, pred) + count_nodes(b, pred),
            RExpr::Match { arms, default, .. } => {
                for a in arms {
                    n += count_nodes(&a.body, pred);
                }
                if let Some(d) = default {
                    n += count_nodes(d, pred);
                }
            }
            RExpr::Dup(_, r)
            | RExpr::Drop(_, r)
            | RExpr::Free(_, r)
            | RExpr::DecRef(_, r)
            | RExpr::DropToken(_, r) => n += count_nodes(r, pred),
            RExpr::DropReuse { body, .. } => n += count_nodes(body, pred),
            RExpr::IsUnique { unique, shared, .. } => {
                n += count_nodes(unique, pred) + count_nodes(shared, pred);
            }
            _ => {}
        }
        n
    }

    /// The fully-optimized map compiles exactly one is-unique, one
    /// token-of, one reuse-annotated Con, and no plain drop-reuse.
    #[test]
    fn optimized_map_shape() {
        let c = compile_map(PassConfig::perceus());
        let body = &c.funs[0].body;
        assert_eq!(
            count_nodes(body, &|e| matches!(e, RExpr::IsUnique { .. })),
            1
        );
        assert_eq!(count_nodes(body, &|e| matches!(e, RExpr::TokenOf(_))), 1);
        assert_eq!(
            count_nodes(body, &|e| matches!(e, RExpr::Con { reuse: Some(_), .. })),
            1
        );
        assert_eq!(
            count_nodes(body, &|e| matches!(e, RExpr::DropReuse { .. })),
            0,
            "drop-reuse must be specialized away"
        );
    }

    /// The no-opt build keeps the generic instructions instead.
    #[test]
    fn no_opt_map_shape() {
        let c = compile_map(PassConfig::perceus_no_opt());
        let body = &c.funs[0].body;
        assert_eq!(
            count_nodes(body, &|e| matches!(e, RExpr::IsUnique { .. })),
            0
        );
        assert_eq!(
            count_nodes(body, &|e| matches!(e, RExpr::Con { reuse: Some(_), .. })),
            0
        );
        assert!(count_nodes(body, &|e| matches!(e, RExpr::Drop(..))) >= 1);
    }

    /// Arity errors at machine entry are reported cleanly.
    #[test]
    fn run_fun_checks_arity() {
        use crate::machine::{Machine, RunConfig};
        use crate::{ReclaimMode, RuntimeError, Value};
        let c = compile_map(PassConfig::perceus());
        let mut m = Machine::new(&c, ReclaimMode::Rc, RunConfig::default());
        let err = m.run_entry(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, RuntimeError::TypeMismatch(_)), "{err}");
    }
}
