//! Epoch-based reclamation for the thread-shared segment — the guard
//! layer under CIRC-style snapshot reads (SNIPPETS.md snippet 1).
//!
//! The shared segment's problem: when a block's strong count hits zero,
//! exactly one thread wins the closing CAS and the block is dead — but
//! another thread may *right now* be reading the block's fields through
//! a [`crate::heap::BlockView`] it obtained while the count was still
//! positive. Freeing the field storage at the CAS would be a
//! use-after-free on that reader. The pre-epoch runtime solved this by
//! never freeing: dead slots kept their storage until the whole segment
//! dropped, which is unbounded retention for the long-lived segments
//! `perceus-serve` holds across sessions.
//!
//! The epoch scheme bounds the wait instead:
//!
//! * a **global epoch** (a monotone `u64`) advances on every retirement;
//! * every heap that attaches the segment registers a **participant**
//!   and *pins* itself at the then-current epoch. The pin is a promise:
//!   "every field slice I can still be holding was obtained at or after
//!   my pin epoch". A participant re-pins ([`Collector::repin`]) only at
//!   *quiescent points* — places where the borrow checker proves no
//!   `BlockView` borrow of the heap is outstanding (`&mut Heap`
//!   methods);
//! * a dead block's storage is **retired**, not freed: pushed on a queue
//!   stamped with the epoch at retirement. Retired storage is
//!   reclaimable once every participant is inactive or pinned *strictly
//!   after* the stamp — no participant can still hold a view of it: a
//!   pin taken after the retirement can only observe the dead header
//!   (the closing CAS happens-before the epoch advance, which
//!   happens-before the later pin), so no new view of the slot can ever
//!   be created under that pin.
//!
//! Orderings are `SeqCst` throughout: every operation here is on the
//! cold path (attach, retire, reclaim, quiescent ticks). The hot read
//! path — the snapshot borrows of the L3/borrow-inferred code — never
//! touches the collector at all; that is the whole point.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A participant's pin slot. `INACTIVE` means "holds no views at all".
const INACTIVE: u64 = u64::MAX;

/// One registered reader (one attached [`crate::heap::Heap`]).
#[derive(Debug)]
pub struct Participant {
    /// The epoch this participant is pinned at, or [`INACTIVE`].
    epoch: AtomicU64,
}

impl Participant {
    /// The currently pinned epoch, if active.
    pub fn pinned_at(&self) -> Option<u64> {
        match self.epoch.load(SeqCst) {
            INACTIVE => None,
            e => Some(e),
        }
    }
}

/// The per-segment collector: global epoch, participant registry, and
/// the deferred-retirement queue (slot indices into the owning
/// [`crate::heap::SharedHeap`]).
#[derive(Debug, Default)]
pub struct Collector {
    /// The global epoch. Advanced by one on every retirement, so a pin
    /// taken after a retirement is strictly greater than its stamp.
    global: AtomicU64,
    /// Registered participants. Guarded by a mutex: registration and
    /// deregistration are cold (attach/detach), and the reclaimer must
    /// see a stable set while computing the safe frontier.
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Retired slot indices with their epoch stamps. The mutex also
    /// serializes reclaimers: an index drained here is owned by exactly
    /// one caller, which is what makes the storage swap in
    /// `SharedHeap::try_reclaim` race-free.
    retired: Mutex<Vec<(u64, u32)>>,
}

impl Collector {
    /// A fresh collector at epoch zero.
    pub fn new() -> Self {
        Collector::default()
    }

    /// The current global epoch (diagnostics).
    pub fn global_epoch(&self) -> u64 {
        self.global.load(SeqCst)
    }

    /// Registers a new participant, pinned at the current epoch.
    pub fn register(&self) -> Arc<Participant> {
        let p = Arc::new(Participant {
            epoch: AtomicU64::new(self.global.load(SeqCst)),
        });
        self.participants.lock().unwrap().push(Arc::clone(&p));
        p
    }

    /// Deregisters a participant (its pin no longer blocks reclamation).
    pub fn unregister(&self, p: &Arc<Participant>) {
        p.epoch.store(INACTIVE, SeqCst);
        self.participants
            .lock()
            .unwrap()
            .retain(|q| !Arc::ptr_eq(q, p));
    }

    /// Advances `p`'s pin to the current epoch. **Quiescent points
    /// only**: the caller must guarantee `p`'s owner holds no field
    /// borrow obtained under the old pin — in practice this is called
    /// from `&mut Heap` methods, where the borrow checker proves it.
    pub fn repin(&self, p: &Participant) {
        p.epoch.store(self.global.load(SeqCst), SeqCst);
    }

    /// Retires `item` (a dead slot's index), stamped with the current
    /// epoch, then advances the global epoch past the stamp. Returns
    /// the stamp.
    pub fn retire(&self, item: u32) -> u64 {
        let mut retired = self.retired.lock().unwrap();
        // fetch_add returns the pre-increment epoch: that is the stamp,
        // and the increment guarantees every later pin exceeds it.
        let stamp = self.global.fetch_add(1, SeqCst);
        retired.push((stamp, item));
        stamp
    }

    /// Retired items not yet reclaimed (diagnostics / tests).
    pub fn pending(&self) -> usize {
        self.retired.lock().unwrap().len()
    }

    /// Drains every retired item whose stamp is strictly below all
    /// active pins into `out`. Each drained index is handed to exactly
    /// one caller, ever.
    pub fn drain_safe(&self, out: &mut Vec<u32>) {
        let mut retired = self.retired.lock().unwrap();
        if retired.is_empty() {
            return;
        }
        let frontier = {
            let participants = self.participants.lock().unwrap();
            participants
                .iter()
                .map(|p| p.epoch.load(SeqCst))
                .min()
                .unwrap_or(INACTIVE)
        };
        retired.retain(|&(stamp, item)| {
            if stamp < frontier {
                out.push(item);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_world_reclaims_immediately() {
        let c = Collector::new();
        c.retire(7);
        c.retire(9);
        let mut out = Vec::new();
        c.drain_safe(&mut out);
        assert_eq!(out, vec![7, 9]);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn a_pin_taken_before_retirement_blocks_reclaim() {
        let c = Collector::new();
        let p = c.register();
        c.retire(1);
        let mut out = Vec::new();
        c.drain_safe(&mut out);
        assert!(out.is_empty(), "pinned at {:?}", p.pinned_at());
        // Repinning past the stamp (a quiescent point) releases it.
        c.repin(&p);
        c.drain_safe(&mut out);
        assert_eq!(out, vec![1]);
        c.unregister(&p);
    }

    #[test]
    fn a_pin_taken_after_retirement_does_not_block() {
        let c = Collector::new();
        c.retire(4);
        let p = c.register(); // pins at stamp+1
        let mut out = Vec::new();
        c.drain_safe(&mut out);
        assert_eq!(out, vec![4], "late pin cannot hold a view of the slot");
        c.unregister(&p);
    }

    #[test]
    fn deregistration_releases_the_frontier() {
        let c = Collector::new();
        let p = c.register();
        let q = c.register();
        c.retire(2);
        let mut out = Vec::new();
        c.drain_safe(&mut out);
        assert!(out.is_empty());
        c.unregister(&p);
        c.drain_safe(&mut out);
        assert!(out.is_empty(), "q still pinned");
        c.unregister(&q);
        c.drain_safe(&mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn each_retired_item_is_drained_exactly_once() {
        let c = Collector::new();
        for i in 0..100 {
            c.retire(i);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        c.drain_safe(&mut a);
        c.drain_safe(&mut b);
        assert_eq!(a.len(), 100);
        assert!(b.is_empty());
    }
}
