//! The reference-counted heap — the runtime realization of the heap
//! semantics of Fig. 7, with the representation choices of §2.7:
//!
//! * each block carries a signed header: positive values are plain
//!   reference counts; negative values are *thread-shared* counts that
//!   take the slow path; values at or below the sticky floor never
//!   change again (§2.7.2's overflow/pinning range);
//! * the heap is **two segments**: this thread-local one (plain `i32`
//!   headers, non-atomic counting — the fast path §2.7.2 promises) and
//!   an optional attached [`shared::SharedHeap`] whose headers are real
//!   `AtomicI32`s. [`Heap::mark_shared`] is the *share barrier*: it
//!   moves a value's reachable closure into the shared segment when the
//!   value crosses a thread boundary. Addresses carry the segment in
//!   their high bit, so every counting entry point routes with a single
//!   branch;
//! * `drop` frees recursively with an explicit worklist (no native-stack
//!   recursion, so dropping a million-element list is safe);
//! * `drop-reuse` returns the cell as a *reuse token* instead of freeing
//!   it (§2.4); a token is later consumed by a constructor-with-reuse
//!   (in-place build) or released by `drop-token`;
//! * every address is generation-checked, so a use-after-free in
//!   generated code is a deterministic error, not corruption;
//! * freed cells are **recycled through size-class segregated free
//!   lists** keyed by field count, the design Lean's runtime uses
//!   (Ullrich & de Moura, *Counting Immutable Beans*): a retired
//!   block's storage is kept and handed back to the next same-arity
//!   allocation without touching the global allocator. See
//!   `docs/RUNTIME.md` for the full memory model and the block state
//!   diagram (live → token → listed → recycled).
//!
//! The same heap serves the tracing-GC and arena baselines: in those
//! modes the counting entry points are inert and reclamation is driven
//! by [`crate::gc`] (or not at all).

pub mod epoch;
pub mod shared;
pub mod stats;

pub use shared::SharedHeap;
pub use stats::{Stats, SCHEDULE_KEYS};

use crate::error::RuntimeError;
use crate::profile::{FrameKind, ProfCounts, Profiler};
use crate::trace::{Event, Trace};
use crate::value::{Addr, Value};
use perceus_core::ir::CtorId;
use perceus_core::passes::Validation;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a lambda's code in the compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LamId(pub u32);

/// What a heap block is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockTag {
    /// A data constructor cell.
    Ctor(CtorId),
    /// A closure: code pointer + captured environment.
    Closure(LamId),
    /// A first-class mutable reference cell (§2.7.3).
    MutRef,
}

/// A heap block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Signed reference count (see module docs). `0` means the cell is
    /// *claimed* by a reuse token: memory held, contents meaningless.
    pub header: i32,
    /// Block kind.
    pub tag: BlockTag,
    /// Mark bit for the tracing collector.
    pub mark: bool,
    /// Fields (captured values for closures, one slot for mut refs).
    pub fields: Box<[Value]>,
}

impl Block {
    /// Words occupied (fields + one header word).
    pub fn words(&self) -> u64 {
        self.fields.len() as u64 + 1
    }

    /// True when thread-shared (negative header, §2.7.2).
    pub fn is_shared(&self) -> bool {
        self.header < 0
    }
}

/// A slot's lifecycle state (see the diagram in `docs/RUNTIME.md`).
enum SlotState {
    /// Empty slot with no retained storage (never yet used, or retired
    /// with an out-of-class field count).
    Free,
    /// Retired block parked on a size-class free list: the field
    /// storage is retained for recycling, but the block is dead — it is
    /// neither live nor a leak, and its slot generation has already
    /// been bumped, so every stale address errors deterministically.
    Listed(Block),
    /// A live block (or one claimed by a reuse token, header 0).
    Used(Block),
}

struct SlotEntry {
    gen: u32,
    state: SlotState,
}

/// How the heap reclaims memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimMode {
    /// Precise reference counting (Perceus / scoped).
    Rc,
    /// Tracing collection: counting entry points are inert; the
    /// collector in [`crate::gc`] reclaims.
    Gc,
    /// Never reclaim (the paper's C++ leak baseline for deriv, nqueens,
    /// cfold).
    Arena,
}

/// Reference counts at or below this value are *sticky*: pinned alive
/// for the rest of the run (the paper's overflow mitigation).
pub const STICKY: i32 = i32::MIN / 2;

/// Number of exact size classes: field counts `0 ..= NUM_SIZE_CLASSES-1`
/// each get their own free list. Constructor arities in practice are
/// tiny (the suite's largest is red-black `Node` with 4 fields), so 16
/// classes cover everything; larger blocks release their storage to the
/// global allocator and only recycle the slot index.
pub const NUM_SIZE_CLASSES: usize = 16;

/// Allocator policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct HeapConfig {
    /// Serve allocations from the size-class free lists (on by
    /// default); off restores the free-and-reallocate discipline, for
    /// the allocator ablation in `figures -- allocator`.
    pub recycle: bool,
    /// When active, release builds also pay the expensive runtime
    /// invariant checks (today: reuse-specialization skipped-field
    /// equality in [`Heap::alloc_into`]). Defaults to
    /// [`Validation::DebugOnly`].
    pub validation: Validation,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            recycle: true,
            validation: Validation::default(),
        }
    }
}

/// A read-only, segment-agnostic view of a block: the one shape both
/// the thread-local heap and the shared segment can serve. Readers
/// (the machine's match/apply/read-back, the auditor) use this instead
/// of [`Heap::block`], which only local blocks can back.
pub struct BlockView<'a> {
    /// Signed header at read time (for shared blocks: an atomic load).
    pub header: i32,
    /// Block kind.
    pub tag: BlockTag,
    /// Fields (immutable for shared blocks by construction).
    pub fields: &'a [Value],
    /// True when the block lives in the shared segment.
    pub shared: bool,
}

/// The heap.
pub struct Heap {
    slots: Vec<SlotEntry>,
    /// Size-class segregated free lists: `classes[k]` holds slot
    /// indices whose retained storage has exactly `k` fields.
    classes: [Vec<u32>; NUM_SIZE_CLASSES],
    /// Slots with no retained storage (out-of-class retirement).
    spare: Vec<u32>,
    /// Reusable worklist for recursive drops (a fresh `Vec` per drop
    /// would put a malloc/free pair on the hottest rc path).
    drop_work: Vec<Addr>,
    config: HeapConfig,
    mode: ReclaimMode,
    /// The attached thread-shared segment, when this heap belongs to a
    /// worker thread of a parallel run (see [`Heap::attach_shared`]).
    shared: Option<Arc<SharedHeap>>,
    /// This heap's pin in the segment's epoch collector: registered on
    /// attach, re-pinned at quiescent points (`&mut self` methods that
    /// just dropped shared references — the borrow checker proves no
    /// [`BlockView`] is outstanding), deregistered on reset/drop. The
    /// pin is what makes every field borrow this heap hands out safe
    /// against concurrent reclamation of dead shared slots.
    epoch_pin: Option<Arc<epoch::Participant>>,
    /// Net shared-segment references this heap currently holds: +1 per
    /// counted shared `dup`, -1 per counted shared `drop`, with a
    /// freed shared block's outgoing references credited to the ledger
    /// the moment its children enter the drop worklist (they are then
    /// consumed by this heap). A balanced session ends at zero; a
    /// nonzero residue after [`Heap::reset`] is the session's
    /// un-returned shared references (see [`Heap::take_shared_drift`]).
    shared_held: u64,
    /// Runtime statistics.
    pub stats: Stats,
    trace: Option<Trace>,
    /// The attributed profiler (see [`crate::profile`]), boxed to keep
    /// the disabled-by-default case one pointer wide.
    prof: Option<Box<Profiler>>,
}

impl Heap {
    /// Creates an empty heap in the given reclamation mode, with
    /// free-list recycling enabled.
    pub fn new(mode: ReclaimMode) -> Self {
        Self::with_config(mode, HeapConfig::default())
    }

    /// Creates an empty heap with an explicit allocator policy.
    pub fn with_config(mode: ReclaimMode, config: HeapConfig) -> Self {
        Heap {
            slots: Vec::new(),
            classes: std::array::from_fn(|_| Vec::new()),
            spare: Vec::new(),
            drop_work: Vec::new(),
            config,
            mode,
            shared: None,
            epoch_pin: None,
            shared_held: 0,
            stats: Stats::default(),
            trace: None,
            prof: None,
        }
    }

    /// Attaches a frozen thread-shared segment. Shared addresses (high
    /// bit set) route to it from every counting entry point; without an
    /// attachment they are [`RuntimeError::BadAddress`].
    ///
    /// Attaching registers this heap as a pinned participant in the
    /// segment's epoch collector: from here until [`Heap::reset`] (or
    /// drop), any dead slot the heap might still be reading keeps its
    /// storage. Attach also opportunistically reclaims storage retired
    /// before this pin.
    pub fn attach_shared(&mut self, segment: Arc<SharedHeap>) {
        self.detach_shared();
        self.epoch_pin = Some(segment.collector().register());
        segment.try_reclaim();
        self.shared = Some(segment);
    }

    /// Detaches the shared segment (if any): deregisters the epoch pin
    /// — releasing this heap's hold on retired storage — and reclaims
    /// whatever became safe.
    fn detach_shared(&mut self) {
        if let Some(sh) = self.shared.take() {
            if let Some(pin) = self.epoch_pin.take() {
                sh.collector().unregister(&pin);
            }
            sh.try_reclaim();
        }
        self.epoch_pin = None;
    }

    /// Re-pins this heap's epoch participant at the current epoch. Only
    /// called from `&mut self` methods — quiescent points where the
    /// borrow checker proves no [`BlockView`] borrow of this heap is
    /// outstanding — after shared drops that may have retired slots.
    #[inline]
    fn epoch_tick(&self) {
        if let (Some(sh), Some(pin)) = (self.shared.as_deref(), self.epoch_pin.as_deref()) {
            sh.collector().repin(pin);
        }
    }

    /// The attached shared segment, if any.
    pub fn shared_segment(&self) -> Option<&SharedHeap> {
        self.shared.as_deref()
    }

    /// Net shared-segment references this heap currently holds: counted
    /// `dup`s minus counted `drop`s, with a freed shared block's
    /// outgoing references transferring onto the ledger as they enter
    /// the drop worklist. Zero whenever the heap's owner has spent
    /// every reference it minted.
    pub fn shared_refs_held(&self) -> u64 {
        self.shared_held
    }

    /// Takes the shared-reference ledger residue (and zeroes it). The
    /// serving worker calls this after [`Heap::reset`]: a well-behaved
    /// session reads zero; a session aborted by a fuel/memory limit may
    /// die with shared references still rooted in dead machine frames,
    /// which cannot be returned safely (a consumed environment slot is
    /// indistinguishable from a live one without liveness info, and an
    /// over-drop could free a block other sessions still reference) —
    /// so the residue is surfaced as measured drift instead of
    /// vanishing silently.
    pub fn take_shared_drift(&mut self) -> u64 {
        std::mem::take(&mut self.shared_held)
    }

    /// Enables the reference-count event tracer (see [`crate::trace`]),
    /// retaining the most recent `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The event trace, when enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    #[inline]
    fn tr(&mut self, e: Event) {
        if let Some(t) = &mut self.trace {
            t.record(e);
        }
    }

    // ---- attributed profiling ---------------------------------------
    //
    // Every public entry point below that mutates an attributable
    // `Stats` counter is a thin wrapper: snapshot the counters
    // (`prof_begin`), run the real `*_inner` body, credit the
    // difference to the profiler's current calling context
    // (`prof_commit`). Internal calls go to the `_inner` forms so no
    // event is counted twice; the exactness test in `perceus-suite`
    // (profile totals == final `Stats`) keeps this split honest. With
    // the profiler disabled each hook is a single `None` branch.

    /// Enables the attributed profiler (see [`crate::profile`]).
    pub fn enable_profile(&mut self) {
        self.prof = Some(Box::default());
    }

    /// The profile accumulated so far, when enabled.
    pub fn profile(&self) -> Option<&Profiler> {
        self.prof.as_deref()
    }

    /// Detaches the profile, disabling further profiling.
    pub fn take_profile(&mut self) -> Option<Profiler> {
        self.prof.take().map(|b| *b)
    }

    /// Machine hook: a call frame was entered.
    #[inline]
    pub fn prof_enter(&mut self, frame: FrameKind) {
        if let Some(p) = &mut self.prof {
            p.enter(frame);
        }
    }

    /// Machine hook: the current call frame returned.
    #[inline]
    pub fn prof_exit(&mut self) {
        if let Some(p) = &mut self.prof {
            p.exit();
        }
    }

    /// Machine hook: the current call frame was replaced by a tail call.
    #[inline]
    pub fn prof_tail(&mut self, frame: FrameKind) {
        if let Some(p) = &mut self.prof {
            p.tail(frame);
        }
    }

    #[inline]
    fn prof_begin(&self) -> Option<ProfCounts> {
        self.prof.as_ref().map(|_| ProfCounts::capture(&self.stats))
    }

    #[inline]
    fn prof_commit(&mut self, snap: Option<ProfCounts>) {
        if let Some(before) = snap {
            let delta = ProfCounts::capture(&self.stats).diff(&before);
            if let Some(p) = &mut self.prof {
                p.record(&delta);
            }
        }
    }

    #[inline]
    fn prof_on_alloc(&mut self, index: u32, tag: BlockTag, words: u64) {
        if let Some(p) = &mut self.prof {
            p.on_alloc(index, tag, words);
        }
    }

    #[inline]
    fn prof_on_release(&mut self, index: u32) {
        if let Some(p) = &mut self.prof {
            p.on_release(index);
        }
    }

    /// The reclamation mode.
    pub fn mode(&self) -> ReclaimMode {
        self.mode
    }

    /// True when reference counting is active.
    pub fn rc_active(&self) -> bool {
        self.mode == ReclaimMode::Rc
    }

    /// True when free-list recycling is enabled.
    pub fn recycling(&self) -> bool {
        self.config.recycle
    }

    /// Number of currently live blocks.
    pub fn live_blocks(&self) -> u64 {
        self.stats.live_blocks
    }

    /// Blocks currently parked on the size-class free lists.
    pub fn listed_blocks(&self) -> u64 {
        self.classes.iter().map(|c| c.len() as u64).sum()
    }

    /// Free-list occupancy per size class: `(field_count, blocks)` for
    /// every nonempty class, ascending.
    pub fn free_list_occupancy(&self) -> Vec<(usize, usize)> {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(k, c)| (k, c.len()))
            .collect()
    }

    // ---- access ----------------------------------------------------

    fn entry(&self, addr: Addr) -> Result<&Block, RuntimeError> {
        Self::lookup(&self.slots, addr)
    }

    fn lookup(slots: &[SlotEntry], addr: Addr) -> Result<&Block, RuntimeError> {
        let e = slots
            .get(addr.index as usize)
            .ok_or(RuntimeError::BadAddress(addr))?;
        if e.gen != addr.gen {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        match &e.state {
            SlotState::Used(b) => Ok(b),
            // A listed slot's generation is already stale, but stay
            // defensive: listed storage must never be readable.
            SlotState::Free | SlotState::Listed(_) => Err(RuntimeError::UseAfterFree(addr)),
        }
    }

    fn entry_mut(&mut self, addr: Addr) -> Result<&mut Block, RuntimeError> {
        Self::lookup_mut(&mut self.slots, addr)
    }

    fn lookup_mut(slots: &mut [SlotEntry], addr: Addr) -> Result<&mut Block, RuntimeError> {
        let e = slots
            .get_mut(addr.index as usize)
            .ok_or(RuntimeError::BadAddress(addr))?;
        if e.gen != addr.gen {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        match &mut e.state {
            SlotState::Used(b) => Ok(b),
            SlotState::Free | SlotState::Listed(_) => Err(RuntimeError::UseAfterFree(addr)),
        }
    }

    /// Reads a *thread-local* block (generation-checked). Shared
    /// addresses are an error here — readers that must serve both
    /// segments go through [`Heap::view`].
    pub fn block(&self, addr: Addr) -> Result<&Block, RuntimeError> {
        if addr.is_shared() {
            return Err(RuntimeError::Internal(format!(
                "block() on shared address {addr} (use view())"
            )));
        }
        self.entry(addr)
    }

    /// Reads a block mutably (generation-checked). Used by the machine
    /// for mutable-reference writes; shared blocks are immutable by
    /// construction, so a shared address is an error.
    pub fn block_mut(&mut self, addr: Addr) -> Result<&mut Block, RuntimeError> {
        if addr.is_shared() {
            return Err(RuntimeError::Internal(format!(
                "mutation of immutable shared block {addr}"
            )));
        }
        self.entry_mut(addr)
    }

    /// Reads a block from either segment (generation-checked locally,
    /// liveness-checked in the shared segment).
    pub fn view(&self, addr: Addr) -> Result<BlockView<'_>, RuntimeError> {
        if addr.is_shared() {
            let sh = self
                .shared
                .as_deref()
                .ok_or(RuntimeError::BadAddress(addr))?;
            return sh.view(addr);
        }
        let b = self.entry(addr)?;
        Ok(BlockView {
            header: b.header,
            tag: b.tag,
            fields: &b.fields,
            shared: false,
        })
    }

    /// True when `addr` names a live block in either segment.
    pub fn ref_alive(&self, addr: Addr) -> bool {
        self.view(addr).is_ok()
    }

    // ---- allocation -------------------------------------------------

    /// Allocates a block with reference count 1, copying `vals` into
    /// recycled storage when the matching size class has a free block —
    /// the hot path: a free-list hit touches no global allocator at all.
    pub fn alloc_slice(&mut self, tag: BlockTag, vals: &[Value]) -> Addr {
        let snap = self.prof_begin();
        let addr = match self.recycle_fit(tag, vals) {
            Some(addr) => addr,
            None => self.install(tag, vals.to_vec().into_boxed_slice()),
        };
        self.prof_commit(snap);
        addr
    }

    /// Allocates a fresh block with reference count 1 from an owned
    /// field box. Prefer [`Heap::alloc_slice`] on hot paths — this entry
    /// point has already paid the allocation for `fields`, so a
    /// free-list hit merely swaps which storage is kept.
    pub fn alloc(&mut self, tag: BlockTag, fields: Box<[Value]>) -> Addr {
        let snap = self.prof_begin();
        let addr = match self.recycle_fit(tag, &fields) {
            Some(addr) => addr,
            None => self.install(tag, fields),
        };
        self.prof_commit(snap);
        addr
    }

    /// Serves an allocation from the matching size-class free list, if
    /// possible. On a hit the retained storage is reused in place.
    fn recycle_fit(&mut self, tag: BlockTag, vals: &[Value]) -> Option<Addr> {
        if !self.config.recycle {
            return None;
        }
        let class = vals.len();
        let index = match self.classes.get_mut(class).and_then(|c| c.pop()) {
            Some(i) => i,
            None => {
                self.stats.freelist_misses += 1;
                return None;
            }
        };
        let e = &mut self.slots[index as usize];
        // Re-badge the slot as used; the generation was already bumped
        // when the previous tenant retired.
        let state = std::mem::replace(&mut e.state, SlotState::Free);
        let SlotState::Listed(mut b) = state else {
            unreachable!("size-class free list holds a non-listed slot");
        };
        debug_assert_eq!(
            b.fields.len(),
            vals.len(),
            "size class {class} served a wrong-sized block"
        );
        b.header = 1;
        b.tag = tag;
        b.mark = false;
        b.fields.copy_from_slice(vals);
        let block_words = b.fields.len() as u64 + 1;
        e.state = SlotState::Used(b);
        let addr = Addr { index, gen: e.gen };
        self.stats.on_fresh_alloc(block_words);
        self.stats.field_writes += vals.len() as u64;
        self.stats.freelist_hits += 1;
        self.stats.recycled_words += block_words;
        self.prof_on_alloc(addr.index, tag, block_words);
        self.tr(Event::Recycle(addr, block_words));
        Some(addr)
    }

    /// Installs a block into a spare slot or grows the table.
    fn install(&mut self, tag: BlockTag, fields: Box<[Value]>) -> Addr {
        let words = fields.len() as u64 + 1;
        self.stats.on_fresh_alloc(words);
        self.stats.field_writes += fields.len() as u64;
        let block = Block {
            header: 1,
            tag,
            mark: false,
            fields,
        };
        let addr = match self.spare.pop() {
            Some(index) => {
                let e = &mut self.slots[index as usize];
                e.state = SlotState::Used(block);
                Addr { index, gen: e.gen }
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(SlotEntry {
                    gen: 0,
                    state: SlotState::Used(block),
                });
                Addr { index, gen: 0 }
            }
        };
        self.prof_on_alloc(addr.index, tag, words);
        self.tr(Event::Alloc(addr, words));
        addr
    }

    /// Builds a constructor in the memory held by a reuse token
    /// (`Con@ru` with a valid token). `skip` elides writes whose field
    /// already holds the value (reuse specialization, §2.5). The mask
    /// must be empty (no elision) or exactly as long as the argument
    /// list — a truncated mask from a broken specialization pass would
    /// otherwise corrupt fields silently. Skipped-field equality is
    /// checked whenever [`HeapConfig::validation`] is active (always
    /// under [`Validation::Full`], including release builds).
    pub fn alloc_into(
        &mut self,
        token: Addr,
        ctor: CtorId,
        args: &[Value],
        skip: &[bool],
    ) -> Result<Addr, RuntimeError> {
        let snap = self.prof_begin();
        let r = self.alloc_into_inner(token, ctor, args, skip);
        self.prof_commit(snap);
        if r.is_ok() {
            if let Some(p) = &mut self.prof {
                p.on_reuse(ctor);
            }
        }
        r
    }

    fn alloc_into_inner(
        &mut self,
        token: Addr,
        ctor: CtorId,
        args: &[Value],
        skip: &[bool],
    ) -> Result<Addr, RuntimeError> {
        if !skip.is_empty() && skip.len() != args.len() {
            return Err(RuntimeError::Internal(format!(
                "reuse skip mask at {token} has {} entries for {} constructor arguments",
                skip.len(),
                args.len()
            )));
        }
        let check_skipped = self.config.validation.active();
        let b = self.entry_mut(token)?;
        if b.header != 0 {
            return Err(RuntimeError::Internal(format!(
                "reuse of unclaimed cell {token} (header {})",
                b.header
            )));
        }
        if b.fields.len() != args.len() {
            return Err(RuntimeError::Internal(format!(
                "reuse size mismatch at {token}: cell has {} fields, constructor {}",
                b.fields.len(),
                args.len()
            )));
        }
        let mut written = 0;
        for (i, v) in args.iter().enumerate() {
            if skip.get(i).copied().unwrap_or(false) {
                if check_skipped && b.fields[i] != *v {
                    return Err(RuntimeError::Internal(format!(
                        "reuse skip mask at {token}: skipped field {i} holds {} but the \
                         constructor argument is {v}",
                        b.fields[i]
                    )));
                }
            } else {
                b.fields[i] = *v;
                written += 1;
            }
        }
        b.header = 1;
        b.tag = BlockTag::Ctor(ctor);
        self.stats.field_writes += written;
        self.stats.skipped_writes += (args.len() - written as usize) as u64;
        self.stats.on_reuse();
        self.tr(Event::Reuse(token));
        Ok(token)
    }

    // ---- reference counting ------------------------------------------

    /// `dup v` — the paper's fast/slow split on the header sign, with a
    /// first check for the by-far most common case: a uniquely-owned
    /// cell (header exactly 1) skips even the sign test's general path.
    pub fn dup(&mut self, v: Value) -> Result<(), RuntimeError> {
        let snap = self.prof_begin();
        let r = self.dup_inner(v);
        self.prof_commit(snap);
        r
    }

    fn dup_inner(&mut self, v: Value) -> Result<(), RuntimeError> {
        if self.mode != ReclaimMode::Rc {
            return Ok(());
        }
        if let Value::Weak(addr) = v {
            // Weak references clone on the weak half only (one RMW);
            // the strong count — and liveness — never move.
            self.stats.dups += 1;
            let sh = self
                .shared
                .as_deref()
                .ok_or(RuntimeError::BadAddress(addr))?;
            sh.weak_dup(addr, &mut self.stats)?;
            return Ok(());
        }
        let Value::Ref(addr) = v else { return Ok(()) };
        self.stats.dups += 1;
        if addr.is_shared() {
            let sh = self
                .shared
                .as_deref()
                .ok_or(RuntimeError::BadAddress(addr))?;
            let (after, counted) = sh.dup(addr, &mut self.stats)?;
            if counted {
                self.shared_held += 1;
            }
            self.tr(Event::Dup(addr, after));
            return Ok(());
        }
        let b = Self::lookup_mut(&mut self.slots, addr)?;
        if b.header == 1 {
            // Uniquely owned: the dominant case in Perceus-optimized
            // code (everything not shared is unique).
            b.header = 2;
        } else if b.header > 0 {
            b.header += 1;
        } else {
            // Marked shared in place by an in-thread `tshare`: the
            // negative-count discipline without any atomic instruction
            // (the block never left this thread).
            self.stats.local_shared_ops += 1;
            if b.header > STICKY {
                b.header -= 1;
            }
        }
        let after = b.header;
        self.tr(Event::Dup(addr, after));
        Ok(())
    }

    /// `drop v` — decrement and free recursively at zero (worklist-based,
    /// so arbitrarily deep structures are safe). The uniquely-owned case
    /// (header 1) is checked first: it frees immediately without the
    /// shared-sign test.
    pub fn drop_value(&mut self, v: Value) -> Result<(), RuntimeError> {
        let snap = self.prof_begin();
        let r = self.drop_value_inner(v);
        self.prof_commit(snap);
        r
    }

    fn drop_value_inner(&mut self, v: Value) -> Result<(), RuntimeError> {
        if self.mode != ReclaimMode::Rc {
            return Ok(());
        }
        if let Value::Weak(addr) = v {
            self.stats.drops += 1;
            let sh = self
                .shared
                .as_deref()
                .ok_or(RuntimeError::BadAddress(addr))?;
            sh.weak_drop(addr, &mut self.stats)?;
            return Ok(());
        }
        let Value::Ref(addr) = v else { return Ok(()) };
        self.stats.drops += 1;
        let mut work = std::mem::take(&mut self.drop_work);
        work.push(addr);
        let r = self.drop_loop(&mut work);
        work.clear();
        self.drop_work = work;
        // Quiescent point: this drop may have retired shared slots
        // (directly, or through a local block's shared children), and
        // this heap provably holds no views (we have `&mut self`) —
        // advance the pin so reclamation can proceed. No-op when no
        // segment is attached.
        self.epoch_tick();
        r
    }

    fn drop_loop(&mut self, work: &mut Vec<Addr>) -> Result<(), RuntimeError> {
        // Weak references released by freed local blocks. Weak drops
        // never cascade, so they drain in one batch at the end (which
        // also sidesteps borrowing the shared segment while a local
        // slot entry is held).
        let mut weak_drops: Vec<Addr> = Vec::new();
        while let Some(addr) = work.pop() {
            if addr.is_shared() {
                // Shared segment: one real atomic RMW; the winning
                // (count-to-zero) thread gets the children pushed onto
                // this worklist and keeps draining them here.
                let sh = self
                    .shared
                    .as_deref()
                    .ok_or(RuntimeError::BadAddress(addr))?;
                let before = work.len();
                let (after, counted) = sh.drop_ref(addr, &mut self.stats, work)?;
                if counted {
                    // One held reference spent; if this drop won the
                    // closing CAS, the dead block's outgoing references
                    // just became ours to consume (they are on the
                    // worklist), so credit them to the ledger now.
                    self.shared_held = self.shared_held.saturating_sub(1);
                    if after == 0 {
                        self.shared_held += (work.len() - before) as u64;
                    }
                }
                self.tr(Event::Drop(addr, after));
                if after == 0 {
                    self.tr(Event::Free(addr));
                }
                continue;
            }
            let e = self
                .slots
                .get_mut(addr.index as usize)
                .ok_or(RuntimeError::BadAddress(addr))?;
            if e.gen != addr.gen {
                return Err(RuntimeError::UseAfterFree(addr));
            }
            let SlotState::Used(b) = &mut e.state else {
                return Err(RuntimeError::UseAfterFree(addr));
            };
            if b.header == 1 {
                // Last reference: free, children join the worklist.
                // Retirement is inlined here (rather than via `retire`)
                // so the alloc+drop hot loop pays one slot lookup, not
                // two.
                for f in b.fields.iter() {
                    match f {
                        Value::Ref(child) => work.push(*child),
                        Value::Weak(child) => weak_drops.push(*child),
                        _ => {}
                    }
                }
                e.gen = e.gen.wrapping_add(1);
                let state = std::mem::replace(&mut e.state, SlotState::Free);
                let SlotState::Used(block) = state else {
                    unreachable!()
                };
                let words = block.words();
                let class = block.fields.len();
                if self.config.recycle && class < NUM_SIZE_CLASSES {
                    e.state = SlotState::Listed(block);
                    self.classes[class].push(addr.index);
                } else {
                    self.spare.push(addr.index);
                }
                self.stats.on_free(words);
                self.prof_on_release(addr.index);
                self.tr(Event::Drop(addr, 0));
                self.tr(Event::Free(addr));
            } else if b.header > 1 {
                b.header -= 1;
                let after = b.header;
                self.tr(Event::Drop(addr, after));
            } else if b.header == 0 {
                return Err(RuntimeError::Internal(format!(
                    "drop of claimed cell {addr}"
                )));
            } else {
                // In-thread `tshare` slow path (non-atomic: the block
                // is still thread-local).
                self.stats.local_shared_ops += 1;
                if b.header > STICKY {
                    b.header += 1;
                    if b.header == 0 {
                        let fields = std::mem::take(&mut b.fields);
                        for f in fields.iter() {
                            match f {
                                Value::Ref(child) => work.push(*child),
                                Value::Weak(child) => weak_drops.push(*child),
                                _ => {}
                            }
                        }
                        b.fields = fields;
                        self.retire(addr)?;
                    }
                }
            }
        }
        for wa in weak_drops {
            let sh = self.shared.as_deref().ok_or(RuntimeError::BadAddress(wa))?;
            sh.weak_drop(wa, &mut self.stats)?;
        }
        Ok(())
    }

    /// `decref v` — decrement without the zero check; only emitted in
    /// the shared branch of an `is-unique`, where the count is ≥ 2.
    pub fn decref(&mut self, v: Value) -> Result<(), RuntimeError> {
        let snap = self.prof_begin();
        let r = self.decref_inner(v);
        self.prof_commit(snap);
        r
    }

    fn decref_inner(&mut self, v: Value) -> Result<(), RuntimeError> {
        if self.mode != ReclaimMode::Rc {
            return Ok(());
        }
        let Value::Ref(addr) = v else { return Ok(()) };
        self.stats.decrefs += 1;
        if addr.is_shared() {
            // `is-unique` never reports shared blocks unique, so the
            // shared branch may hold the *last* reference and must
            // reclaim fully at zero — route through the drop loop,
            // which pays the real atomic RMW.
            return self.release_shared(addr);
        }
        let b = Self::lookup_mut(&mut self.slots, addr)?;
        if b.header > 1 {
            b.header -= 1;
            Ok(())
        } else if b.header < 0 {
            // In-thread `tshare`: same discipline, no atomics.
            self.stats.local_shared_ops += 1;
            if b.header > STICKY {
                b.header += 1;
                if b.header == 0 {
                    let fields: Vec<Value> = b.fields.to_vec();
                    self.retire(addr)?;
                    for f in fields {
                        if f.is_ref() || matches!(f, Value::Weak(_)) {
                            self.drop_value_inner(f)?;
                            // The child release is part of this free, not
                            // a program-emitted drop instruction.
                            self.stats.drops -= 1;
                        }
                    }
                }
            }
            Ok(())
        } else {
            Err(RuntimeError::Internal(format!(
                "decref of {addr} with header {}",
                b.header
            )))
        }
    }

    /// `is-unique(v)` — thread-shared blocks are never unique (in-place
    /// mutation of shared data is racy, §2.7.3).
    pub fn is_unique(&mut self, v: Value) -> Result<bool, RuntimeError> {
        let snap = self.prof_begin();
        let r = self.is_unique_inner(v);
        self.prof_commit(snap);
        r
    }

    fn is_unique_inner(&mut self, v: Value) -> Result<bool, RuntimeError> {
        self.stats.unique_tests += 1;
        let unique = match v {
            Value::Ref(addr) if addr.is_shared() => {
                // A plain sign test would do, but validate liveness so
                // a stale shared address still errors deterministically.
                self.view(addr)?;
                false
            }
            Value::Ref(addr) => Self::lookup(&self.slots, addr)?.header == 1,
            _ => false,
        };
        if unique {
            self.stats.unique_hits += 1;
        }
        Ok(unique)
    }

    /// `free v` — free the cell only; the children's ownership has been
    /// transferred to the surrounding match binders (fast path of
    /// Fig. 1d). Requires a unique cell.
    pub fn free_cell(&mut self, v: Value) -> Result<(), RuntimeError> {
        let snap = self.prof_begin();
        let r = self.free_cell_inner(v);
        self.prof_commit(snap);
        r
    }

    fn free_cell_inner(&mut self, v: Value) -> Result<(), RuntimeError> {
        let Value::Ref(addr) = v else {
            return Err(RuntimeError::Internal("free of a non-reference".into()));
        };
        if addr.is_shared() {
            return Err(RuntimeError::Internal(format!(
                "free of shared block {addr} (shared blocks are never unique)"
            )));
        }
        let b = self.entry(addr)?;
        if b.header != 1 {
            return Err(RuntimeError::Internal(format!(
                "free of non-unique cell {addr} (header {})",
                b.header
            )));
        }
        self.retire(addr)?;
        Ok(())
    }

    /// `&v` — claim a unique cell as a reuse token (fast path of
    /// Fig. 1g). The memory is held; contents become meaningless.
    pub fn claim(&mut self, v: Value) -> Result<Value, RuntimeError> {
        let Value::Ref(addr) = v else {
            return Err(RuntimeError::Internal("&x of a non-reference".into()));
        };
        if addr.is_shared() {
            return Err(RuntimeError::Internal(format!(
                "&x of shared block {addr} (shared blocks are never unique)"
            )));
        }
        let b = self.entry_mut(addr)?;
        if b.header != 1 {
            return Err(RuntimeError::Internal(format!(
                "&x of non-unique cell {addr} (header {})",
                b.header
            )));
        }
        b.header = 0;
        self.tr(Event::Claim(addr));
        Ok(Value::Token(Some(addr)))
    }

    /// `drop-reuse v` (unspecialized, Fig. 1e): if unique, drop the
    /// children and claim the cell; otherwise decrement and return the
    /// null token.
    pub fn drop_reuse(&mut self, v: Value) -> Result<Value, RuntimeError> {
        let snap = self.prof_begin();
        let r = self.drop_reuse_inner(v);
        self.prof_commit(snap);
        r
    }

    fn drop_reuse_inner(&mut self, v: Value) -> Result<Value, RuntimeError> {
        match v {
            Value::Ref(addr) if addr.is_shared() => {
                // Shared blocks are never unique: decrement (possibly
                // reclaiming fully) and yield the null token.
                self.stats.unique_tests += 1;
                self.stats.decrefs += 1;
                self.release_shared(addr)?;
                Ok(Value::Token(None))
            }
            Value::Ref(addr) => {
                self.stats.unique_tests += 1;
                let b = Self::lookup(&self.slots, addr)?;
                if b.header == 1 {
                    self.stats.unique_hits += 1;
                    // Claim first (acyclic data: the children never point
                    // back), then drop the children — via the pooled
                    // worklist, so the roundtrip allocates nothing.
                    let mut work = std::mem::take(&mut self.drop_work);
                    let mut weak_children: Vec<Addr> = Vec::new();
                    let b = Self::lookup_mut(&mut self.slots, addr)?;
                    b.header = 0;
                    for f in b.fields.iter() {
                        match f {
                            Value::Ref(child) => work.push(*child),
                            Value::Weak(child) => weak_children.push(*child),
                            _ => {}
                        }
                    }
                    self.stats.drops += (work.len() + weak_children.len()) as u64;
                    self.tr(Event::Claim(addr));
                    let r = self.drop_loop(&mut work);
                    work.clear();
                    self.drop_work = work;
                    r?;
                    for wa in weak_children {
                        let sh = self.shared.as_deref().ok_or(RuntimeError::BadAddress(wa))?;
                        sh.weak_drop(wa, &mut self.stats)?;
                    }
                    Ok(Value::Token(Some(addr)))
                } else {
                    self.decref_or_shared_drop(addr)?;
                    Ok(Value::Token(None))
                }
            }
            // Singletons and non-references yield the null token.
            _ => Ok(Value::Token(None)),
        }
    }

    /// Decrements a shared-segment reference through the drop loop
    /// (which pays the real atomic RMW and reclaims fully at zero).
    fn release_shared(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        debug_assert!(addr.is_shared());
        let mut work = std::mem::take(&mut self.drop_work);
        work.push(addr);
        let r = self.drop_loop(&mut work);
        work.clear();
        self.drop_work = work;
        self.epoch_tick(); // quiescent point: see `drop_value_inner`
        r
    }

    fn decref_or_shared_drop(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        let b = Self::lookup_mut(&mut self.slots, addr)?;
        self.stats.decrefs += 1;
        if b.header > 1 {
            b.header -= 1;
        } else if b.header < 0 {
            self.stats.local_shared_ops += 1;
            if b.header > STICKY {
                b.header += 1;
                if b.header == 0 {
                    // Shared count hit zero here: free fully.
                    b.header = 1;
                    return self.drop_value_inner(Value::Ref(addr));
                }
            }
        } else {
            return Err(RuntimeError::Internal(format!(
                "drop-reuse decrement of {addr} with header {}",
                b.header
            )));
        }
        Ok(())
    }

    /// Mints a weak reference to a live shared block (the CIRC-style
    /// `downgrade`): one RMW on the weak half of the packed header.
    /// Weak references never keep the block alive and never read its
    /// fields; see [`Value::Weak`].
    pub fn downgrade(&mut self, v: Value) -> Result<Value, RuntimeError> {
        let Value::Ref(addr) = v else {
            return Err(RuntimeError::Internal(
                "downgrade of a non-reference".into(),
            ));
        };
        if !addr.is_shared() {
            return Err(RuntimeError::Internal(format!(
                "downgrade of thread-local block {addr} (weak references are a \
                 shared-segment feature)"
            )));
        }
        let sh = self
            .shared
            .as_deref()
            .ok_or(RuntimeError::BadAddress(addr))?;
        // Validate liveness first: downgrading a dead block is a stale
        // address, not a weak-of-dead (those arise only by outliving).
        sh.view(addr)?;
        sh.weak_dup(addr, &mut self.stats)?;
        Ok(Value::Weak(addr))
    }

    /// Attempts to upgrade a weak reference to a strong one. Returns
    /// `Some(Value::Ref(..))` — the caller now owns one counted strong
    /// reference — while the block lives, or `None`, deterministically,
    /// once it is dead. The weak reference itself is not consumed.
    pub fn upgrade_weak(&mut self, v: Value) -> Result<Option<Value>, RuntimeError> {
        let Value::Weak(addr) = v else {
            return Err(RuntimeError::Internal("upgrade of a non-weak value".into()));
        };
        let sh = self
            .shared
            .as_deref()
            .ok_or(RuntimeError::BadAddress(addr))?;
        match sh.upgrade(addr, &mut self.stats)? {
            Some((_, counted)) => {
                if counted {
                    self.shared_held += 1;
                }
                Ok(Some(Value::Ref(addr)))
            }
            None => Ok(None),
        }
    }

    /// `drop-token t` — release an unused token, freeing the held memory.
    pub fn drop_token(&mut self, v: Value) -> Result<(), RuntimeError> {
        let snap = self.prof_begin();
        let r = self.drop_token_inner(v);
        self.prof_commit(snap);
        r
    }

    fn drop_token_inner(&mut self, v: Value) -> Result<(), RuntimeError> {
        match v {
            Value::Token(Some(addr)) => {
                let b = self.entry(addr)?;
                if b.header != 0 {
                    return Err(RuntimeError::Internal(format!(
                        "drop-token of unclaimed cell {addr}"
                    )));
                }
                self.retire(addr)?;
                self.stats.token_frees += 1;
                Ok(())
            }
            Value::Token(None) => Ok(()),
            _ => Err(RuntimeError::Internal("drop-token of a non-token".into())),
        }
    }

    /// `tshare v` — mark a value and everything reachable from it as
    /// thread-shared (§2.7.2). Idempotent; safe on cyclic ref structures.
    pub fn tshare(&mut self, v: Value) -> Result<(), RuntimeError> {
        let snap = self.prof_begin();
        let r = self.tshare_inner(v);
        self.prof_commit(snap);
        r
    }

    fn tshare_inner(&mut self, v: Value) -> Result<(), RuntimeError> {
        let mut work = Vec::new();
        if let Value::Ref(a) = v {
            work.push(a);
        }
        while let Some(addr) = work.pop() {
            if addr.is_shared() {
                continue; // already in the shared segment
            }
            let b = Self::lookup_mut(&mut self.slots, addr)?;
            if b.header < 0 {
                continue; // already shared — also breaks ref cycles
            }
            if b.header == 0 {
                return Err(RuntimeError::Internal(format!(
                    "tshare of claimed cell {addr}"
                )));
            }
            b.header = -b.header;
            let fields = b.fields.clone();
            self.stats.shared_marks += 1;
            self.tr(Event::Share(addr));
            for f in fields.iter() {
                if let Value::Ref(child) = f {
                    work.push(*child);
                }
            }
        }
        Ok(())
    }

    /// The *share barrier* (§2.7.2, realized): moves `v`'s entire
    /// reachable closure out of this thread-local heap into `segment`
    /// (whose headers are real atomics), rewriting every intra-closure
    /// reference to its shared address, and returns the rewritten value.
    ///
    /// Unlike the in-thread [`Heap::tshare`] (which flips signs in
    /// place and never pays an atomic), this is the barrier a value
    /// crosses when it is about to be handed to other threads: after it
    /// returns, every surviving *local* address into the moved closure
    /// is stale and fails deterministically via the generation check.
    ///
    /// Counts transfer as-is (a local count of `k` becomes a shared
    /// count of `-k`; sticky stays pinned). Mutable references are
    /// rejected — shared data must be immutable (§2.7.3), which is also
    /// what makes the moved closure acyclic and the traversal total.
    pub fn mark_shared(
        &mut self,
        v: Value,
        segment: &mut SharedHeap,
    ) -> Result<Value, RuntimeError> {
        let snap = self.prof_begin();
        let r = self.mark_shared_inner(v, segment);
        self.prof_commit(snap);
        r
    }

    fn mark_shared_inner(
        &mut self,
        v: Value,
        segment: &mut SharedHeap,
    ) -> Result<Value, RuntimeError> {
        let Value::Ref(root) = v else { return Ok(v) };
        if root.is_shared() {
            return Ok(v);
        }
        let mut moved: HashMap<u32, Addr> = HashMap::new();
        // Iterative post-order DFS: children move first, so a parent
        // can rewrite its fields to final shared addresses.
        let mut stack: Vec<(Addr, usize)> = vec![(root, 0)];
        while let Some((addr, i)) = stack.pop() {
            if i == 0 && moved.contains_key(&addr.index) {
                continue; // diamond: already moved via another parent
            }
            let b = self.entry(addr)?;
            if b.tag == BlockTag::MutRef {
                return Err(RuntimeError::Internal(format!(
                    "cannot share mutable reference {addr} across threads (§2.7.3)"
                )));
            }
            if b.header == 0 {
                return Err(RuntimeError::Internal(format!(
                    "cannot share claimed cell {addr}"
                )));
            }
            if let Some(f) = b.fields.get(i) {
                stack.push((addr, i + 1));
                if let Value::Ref(child) = f {
                    if !child.is_shared() && !moved.contains_key(&child.index) {
                        stack.push((*child, 0));
                    }
                }
                continue;
            }
            // All children are in the segment: move this block.
            let pinned = b.header <= STICKY;
            let count = b.header.unsigned_abs();
            let tag = b.tag;
            let fields: Box<[Value]> = b
                .fields
                .iter()
                .map(|f| match f {
                    Value::Ref(c) if !c.is_shared() => Value::Ref(moved[&c.index]),
                    other => *other,
                })
                .collect();
            let saddr = segment.install(tag, fields, count, pinned);
            moved.insert(addr.index, saddr);
            self.evict(addr)?;
            self.stats.shared_marks += 1;
            self.tr(Event::Share(addr));
        }
        Ok(Value::Ref(moved[&root.index]))
    }

    /// Removes a block whose contents have moved to the shared segment:
    /// bumps the generation (stale local addresses fail fast) and
    /// recycles the slot index. Live accounting transfers to the
    /// segment — this is a move, not a free, so `Stats::frees` stays
    /// untouched. Legal in every reclaim mode (even the arena: nothing
    /// is reclaimed, the block just changes segment).
    fn evict(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        let e = self
            .slots
            .get_mut(addr.index as usize)
            .ok_or(RuntimeError::BadAddress(addr))?;
        if e.gen != addr.gen || !matches!(e.state, SlotState::Used(_)) {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        let SlotState::Used(block) = std::mem::replace(&mut e.state, SlotState::Free) else {
            unreachable!()
        };
        e.gen = e.gen.wrapping_add(1);
        self.spare.push(addr.index);
        self.stats.live_blocks -= 1;
        self.stats.live_words -= block.words();
        self.prof_on_release(addr.index);
        Ok(())
    }

    // ---- session recycling ------------------------------------------

    /// Resets the heap between serving sessions: every live block
    /// (including cells claimed by an abandoned reuse token) is
    /// force-retired onto the size-class free lists, every slot
    /// generation is bumped so *any* address the previous session might
    /// have leaked fails deterministically, statistics are zeroed, and
    /// the attached shared segment is detached. Returns the number of
    /// blocks reclaimed — zero after a well-behaved garbage-free
    /// session, nonzero when the previous session was aborted mid-run
    /// (fuel or memory exhaustion) with values still rooted in its
    /// machine.
    ///
    /// The retained storage is the point: the next session's
    /// allocations are served from the warm free lists
    /// ([`HeapConfig::recycle`]), so a long-lived worker amortizes its
    /// allocator traffic across thousands of sessions. Everything
    /// *observable* is as if the heap were freshly constructed — the
    /// generation check is what makes cross-session reuse of the same
    /// slots safe (see `docs/RUNTIME.md`).
    pub fn reset(&mut self) -> u64 {
        // Repay the shared-segment references held by live blocks'
        // fields before force-retiring them: a field owns exactly one
        // reference, so this part of an aborted session's holdings can
        // be returned precisely (with real atomic drops). References
        // still rooted in the dead machine's frames are *not*
        // recoverable here — a consumed slot is indistinguishable from
        // a live one without liveness info — so they stay on the ledger
        // and surface through [`Heap::take_shared_drift`].
        if self.mode == ReclaimMode::Rc && self.shared.is_some() {
            let mut held: Vec<Addr> = Vec::new();
            let mut weak_held: Vec<Addr> = Vec::new();
            for e in self.slots.iter() {
                if let SlotState::Used(block) = &e.state {
                    if block.header == 0 {
                        continue; // claimed by a reuse token: contents meaningless
                    }
                    for f in block.fields.iter() {
                        match f {
                            Value::Ref(a) if a.is_shared() => held.push(*a),
                            Value::Weak(a) => weak_held.push(*a),
                            _ => {}
                        }
                    }
                }
            }
            if !held.is_empty() {
                let _ = self.drop_loop(&mut held);
            }
            for wa in weak_held {
                if let Some(sh) = self.shared.as_deref() {
                    let _ = sh.weak_drop(wa, &mut self.stats);
                }
            }
        }
        let mut reclaimed = 0;
        for (i, e) in self.slots.iter_mut().enumerate() {
            if let SlotState::Used(_) = e.state {
                reclaimed += 1;
                e.gen = e.gen.wrapping_add(1);
                let SlotState::Used(block) = std::mem::replace(&mut e.state, SlotState::Free)
                else {
                    unreachable!()
                };
                let class = block.fields.len();
                if self.config.recycle && class < NUM_SIZE_CLASSES {
                    e.state = SlotState::Listed(block);
                    self.classes[class].push(i as u32);
                } else {
                    self.spare.push(i as u32);
                }
            }
        }
        self.drop_work.clear();
        // Unpin from the epoch collector and reclaim whatever this
        // session's drops retired — the serving-layer retention fix:
        // dead shared slots give their storage back here, not at
        // segment teardown.
        self.detach_shared();
        self.stats = Stats::default();
        // Deliberately *not* zeroed: `shared_held` carries the aborted
        // session's un-returned references out to `take_shared_drift`.
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        if self.prof.is_some() {
            self.prof = Some(Box::default());
        }
        reclaimed
    }

    // ---- reclamation plumbing ---------------------------------------

    /// Retires a block: bumps the slot generation (making every
    /// outstanding address stale) and parks the storage on the matching
    /// size-class free list — or releases it to the global allocator
    /// when the field count is out of class or recycling is off.
    fn retire(&mut self, addr: Addr) -> Result<(), RuntimeError> {
        if self.mode == ReclaimMode::Arena {
            // The arena never reclaims; callers in arena mode never get
            // here because rc entry points are inert, but be defensive.
            return Err(RuntimeError::Internal("release in arena mode".into()));
        }
        let e = self
            .slots
            .get_mut(addr.index as usize)
            .ok_or(RuntimeError::BadAddress(addr))?;
        if e.gen != addr.gen {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        let state = std::mem::replace(&mut e.state, SlotState::Free);
        let SlotState::Used(block) = state else {
            e.state = state;
            return Err(RuntimeError::UseAfterFree(addr));
        };
        e.gen = e.gen.wrapping_add(1);
        let words = block.words();
        let class = block.fields.len();
        if self.config.recycle && class < NUM_SIZE_CLASSES {
            e.state = SlotState::Listed(block);
            self.classes[class].push(addr.index);
        } else {
            self.spare.push(addr.index);
        }
        self.stats.on_free(words);
        self.prof_on_release(addr.index);
        self.tr(Event::Free(addr));
        Ok(())
    }

    /// Iterates live blocks with their addresses (auditor and collector).
    /// Free-listed blocks are invisible here: they are neither live nor
    /// leaked.
    pub fn iter_live(&self) -> impl Iterator<Item = (Addr, &Block)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match &e.state {
                SlotState::Used(b) => Some((
                    Addr {
                        index: i as u32,
                        gen: e.gen,
                    },
                    b,
                )),
                SlotState::Free | SlotState::Listed(_) => None,
            })
    }

    /// Collector support: clear all mark bits.
    pub(crate) fn clear_marks(&mut self) {
        for e in &mut self.slots {
            if let SlotState::Used(b) = &mut e.state {
                b.mark = false;
            }
        }
    }

    /// Collector support: sweep unmarked blocks onto the free lists;
    /// returns count swept.
    pub(crate) fn sweep(&mut self) -> u64 {
        let snap = self.prof_begin();
        let swept = self.sweep_inner();
        self.prof_commit(snap);
        swept
    }

    fn sweep_inner(&mut self) -> u64 {
        let mut swept = 0;
        for i in 0..self.slots.len() {
            let e = &mut self.slots[i];
            if let SlotState::Used(b) = &mut e.state {
                if !b.mark {
                    let words = b.words();
                    let class = b.fields.len();
                    e.gen = e.gen.wrapping_add(1);
                    let state = std::mem::replace(&mut e.state, SlotState::Free);
                    let SlotState::Used(block) = state else {
                        unreachable!()
                    };
                    if self.config.recycle && class < NUM_SIZE_CLASSES {
                        e.state = SlotState::Listed(block);
                        self.classes[class].push(i as u32);
                    } else {
                        self.spare.push(i as u32);
                    }
                    self.stats.on_free(words);
                    self.prof_on_release(i as u32);
                    swept += 1;
                }
            }
        }
        self.stats.gc_swept += swept;
        swept
    }
}

impl Drop for Heap {
    fn drop(&mut self) {
        // A dropped heap must not leave its epoch pin registered: a
        // stale pin would block the segment's reclamation forever
        // (worker heaps die at thread join while the driver still holds
        // the segment).
        self.detach_shared();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_core::ir::CtorId;

    fn heap() -> Heap {
        Heap::new(ReclaimMode::Rc)
    }

    fn cell(h: &mut Heap, fields: Vec<Value>) -> Addr {
        h.alloc(BlockTag::Ctor(CtorId(9)), fields.into_boxed_slice())
    }

    #[test]
    fn alloc_and_drop_frees() {
        let mut h = heap();
        let a = cell(&mut h, vec![Value::Int(1)]);
        assert_eq!(h.live_blocks(), 1);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 0);
        // Use after free is a detected error, not corruption.
        assert!(matches!(h.block(a), Err(RuntimeError::UseAfterFree(_))));
    }

    #[test]
    fn drop_frees_recursively() {
        let mut h = heap();
        let inner = cell(&mut h, vec![Value::Int(1)]);
        let outer = cell(&mut h, vec![Value::Ref(inner)]);
        assert_eq!(h.live_blocks(), 2);
        h.drop_value(Value::Ref(outer)).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn deep_drop_does_not_recurse_natively() {
        // A 100k-deep chain: would overflow the native stack if drop
        // recursed.
        let mut h = heap();
        let mut cur = cell(&mut h, vec![Value::Unit]);
        for _ in 0..100_000 {
            cur = cell(&mut h, vec![Value::Ref(cur)]);
        }
        h.drop_value(Value::Ref(cur)).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn dup_keeps_alive() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        h.dup(Value::Ref(a)).unwrap();
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 1);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn is_unique_semantics() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        assert!(h.is_unique(Value::Ref(a)).unwrap());
        h.dup(Value::Ref(a)).unwrap();
        assert!(!h.is_unique(Value::Ref(a)).unwrap());
        assert!(!h.is_unique(Value::Int(3)).unwrap());
        h.drop_value(Value::Ref(a)).unwrap();
        h.drop_value(Value::Ref(a)).unwrap();
    }

    #[test]
    fn drop_reuse_unique_claims_cell() {
        let mut h = heap();
        let child = cell(&mut h, vec![]);
        let a = cell(&mut h, vec![Value::Ref(child)]);
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        // Child freed; cell claimed (memory held: still a live block).
        assert_eq!(tok, Value::Token(Some(a)));
        assert_eq!(h.live_blocks(), 1);
        // Building into the token reuses, not allocates.
        let before = h.stats.allocations;
        let out = h.alloc_into(a, CtorId(9), &[Value::Int(7)], &[]).unwrap();
        assert_eq!(out, a);
        assert_eq!(h.stats.allocations, before);
        assert_eq!(h.stats.reuses, 1);
        h.drop_value(Value::Ref(out)).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn drop_reuse_shared_returns_null_token() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        h.dup(Value::Ref(a)).unwrap();
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        assert_eq!(tok, Value::Token(None));
        assert_eq!(h.block(a).unwrap().header, 1);
        h.drop_value(Value::Ref(a)).unwrap();
    }

    #[test]
    fn drop_token_frees_claimed_memory() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        h.drop_token(tok).unwrap();
        assert_eq!(h.live_blocks(), 0);
        assert_eq!(h.stats.token_frees, 1);
    }

    #[test]
    fn reset_repays_field_held_shared_refs_and_surfaces_frame_drift() {
        let mut h = heap();
        let mut seg = SharedHeap::new();
        let inner = cell(&mut h, vec![Value::Int(1)]);
        let root = cell(&mut h, vec![Value::Ref(inner)]);
        let shared = h.mark_shared(Value::Ref(root), &mut seg).unwrap();
        let Value::Ref(sa) = shared else { panic!() };
        h.attach_shared(Arc::new(seg));
        // Mint two references: one will be stored into a local block's
        // field, the other stays loose (a dead machine frame's root
        // after an abort). The barrier-transferred count itself belongs
        // to the segment's owner, not this ledger.
        h.dup(shared).unwrap();
        h.dup(shared).unwrap();
        assert_eq!(h.shared_refs_held(), 2);
        let _holder = cell(&mut h, vec![shared]);
        assert_eq!(
            h.shared_segment().unwrap().view(sa).unwrap().header,
            -3,
            "owner + two minted references"
        );
        // Abort-style reset: the holder's field reference is repaid
        // with a real atomic drop; the loose one becomes measured
        // drift.
        let seg = Arc::clone(h.shared.as_ref().unwrap());
        let reclaimed = h.reset();
        assert_eq!(reclaimed, 1, "only the holder block was live");
        assert_eq!(seg.view(sa).unwrap().header, -2, "field ref returned");
        assert_eq!(h.take_shared_drift(), 1, "the frame-held reference");
        assert_eq!(h.take_shared_drift(), 0, "take zeroes the ledger");
    }

    #[test]
    fn balanced_shared_sessions_leave_no_drift() {
        let mut h = heap();
        let mut seg = SharedHeap::new();
        let inner = cell(&mut h, vec![Value::Int(7)]);
        let root = cell(&mut h, vec![Value::Ref(inner)]);
        let shared = h.mark_shared(Value::Ref(root), &mut seg).unwrap();
        h.attach_shared(Arc::new(seg));
        h.dup(shared).unwrap();
        assert_eq!(h.shared_refs_held(), 1);
        h.drop_value(shared).unwrap();
        assert_eq!(h.shared_refs_held(), 0);
        h.reset();
        assert_eq!(h.take_shared_drift(), 0);
    }

    #[test]
    fn thread_shared_counting() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        h.tshare(Value::Ref(a)).unwrap();
        assert!(h.block(a).unwrap().is_shared());
        assert!(
            !h.is_unique(Value::Ref(a)).unwrap(),
            "shared is never unique"
        );
        h.dup(Value::Ref(a)).unwrap();
        assert_eq!(h.block(a).unwrap().header, -2);
        assert!(h.stats.local_shared_ops >= 1);
        assert_eq!(
            h.stats.atomic_ops, 0,
            "in-thread tshare never pays a real atomic"
        );
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 1);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn tshare_marks_children_and_handles_cycles() {
        let mut h = heap();
        let r = h.alloc(BlockTag::MutRef, vec![Value::Unit].into_boxed_slice());
        let holder = cell(&mut h, vec![Value::Ref(r)]);
        // Tie the knot: r -> holder -> r.
        h.block_mut(r).unwrap().fields[0] = Value::Ref(holder);
        h.tshare(Value::Ref(holder)).unwrap(); // must terminate
        assert!(h.block(r).unwrap().is_shared());
        assert!(h.block(holder).unwrap().is_shared());
    }

    #[test]
    fn sticky_counts_are_pinned() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        h.block_mut(a).unwrap().header = STICKY;
        h.dup(Value::Ref(a)).unwrap();
        assert_eq!(h.block(a).unwrap().header, STICKY);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.block(a).unwrap().header, STICKY, "sticky never freed");
        assert_eq!(h.live_blocks(), 1);
    }

    #[test]
    fn gc_mode_rc_is_inert() {
        let mut h = Heap::new(ReclaimMode::Gc);
        let a = cell(&mut h, vec![]);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 1, "gc mode ignores drops");
        assert_eq!(h.stats.drops, 0);
    }

    #[test]
    fn reuse_skip_mask_elides_writes() {
        let mut h = heap();
        let a = cell(&mut h, vec![Value::Int(1), Value::Int(2)]);
        let writes_before = h.stats.field_writes;
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        let Value::Token(Some(t)) = tok else { panic!() };
        h.alloc_into(
            t,
            CtorId(9),
            &[Value::Int(1), Value::Int(5)],
            &[true, false],
        )
        .unwrap();
        assert_eq!(h.stats.field_writes - writes_before, 1);
        assert_eq!(h.stats.skipped_writes, 1);
        h.drop_value(Value::Ref(t)).unwrap();
    }

    #[test]
    fn truncated_skip_mask_is_a_hard_error() {
        // Regression: a skip mask shorter than the argument list used to
        // be tolerated silently (missing entries treated as "write"),
        // hiding a broken reuse-specialization pass.
        let mut h = heap();
        let a = cell(&mut h, vec![Value::Int(1), Value::Int(2)]);
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        let Value::Token(Some(t)) = tok else { panic!() };
        let err = h
            .alloc_into(t, CtorId(9), &[Value::Int(1), Value::Int(5)], &[true])
            .unwrap_err();
        assert!(
            matches!(&err, RuntimeError::Internal(m) if m.contains("skip mask")),
            "{err}"
        );
        // The cell stays claimed: the token is still releasable.
        h.drop_token(Value::Token(Some(t))).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn skipped_field_mismatch_is_checked_under_full_validation() {
        let mut h = Heap::with_config(
            ReclaimMode::Rc,
            HeapConfig {
                recycle: true,
                validation: Validation::Full,
            },
        );
        let a = h.alloc(
            BlockTag::Ctor(CtorId(9)),
            vec![Value::Int(1), Value::Int(2)].into_boxed_slice(),
        );
        let tok = h.drop_reuse(Value::Ref(a)).unwrap();
        let Value::Token(Some(t)) = tok else { panic!() };
        // Claim says field 0 already holds the argument, but it holds 1,
        // not 7: under Full validation this is an error even in release.
        let err = h
            .alloc_into(
                t,
                CtorId(9),
                &[Value::Int(7), Value::Int(5)],
                &[true, false],
            )
            .unwrap_err();
        assert!(
            matches!(&err, RuntimeError::Internal(m) if m.contains("skipped field")),
            "{err}"
        );
        // With Validation::Off the same mask is trusted (release-speed
        // path) — build a fresh heap to show the policy is config-driven.
        let mut h2 = Heap::with_config(
            ReclaimMode::Rc,
            HeapConfig {
                recycle: true,
                validation: Validation::Off,
            },
        );
        let b = h2.alloc(
            BlockTag::Ctor(CtorId(9)),
            vec![Value::Int(1), Value::Int(2)].into_boxed_slice(),
        );
        let tok = h2.drop_reuse(Value::Ref(b)).unwrap();
        let Value::Token(Some(t2)) = tok else {
            panic!()
        };
        h2.alloc_into(
            t2,
            CtorId(9),
            &[Value::Int(1), Value::Int(5)],
            &[true, false],
        )
        .unwrap();
        h2.drop_value(Value::Ref(t2)).unwrap();
    }

    #[test]
    fn mark_shared_moves_closure_and_staleness_is_deterministic() {
        let mut h = heap();
        let mut seg = SharedHeap::new();
        let leaf = cell(&mut h, vec![Value::Int(7)]);
        let root = cell(&mut h, vec![Value::Ref(leaf), Value::Int(1)]);
        let shared = h.mark_shared(Value::Ref(root), &mut seg).unwrap();
        let Value::Ref(sroot) = shared else { panic!() };
        assert!(sroot.is_shared());
        assert_eq!(h.live_blocks(), 0, "both blocks left the local heap");
        assert_eq!(seg.live_blocks(), 2);
        assert_eq!(h.stats.shared_marks, 2);
        // Stale local addresses fail deterministically.
        assert!(matches!(h.block(root), Err(RuntimeError::UseAfterFree(_))));
        // The moved structure is readable through the attached segment.
        let seg = Arc::new(seg);
        h.attach_shared(seg.clone());
        let view = h.view(sroot).unwrap();
        assert_eq!(view.header, -1);
        assert!(view.shared);
        let Value::Ref(schild) = view.fields[0] else {
            panic!()
        };
        assert!(schild.is_shared(), "intra-closure references rewritten");
        assert_eq!(h.view(schild).unwrap().fields[0], Value::Int(7));
        // Dropping the only reference empties the segment; the drops
        // are real atomic RMWs.
        h.drop_value(shared).unwrap();
        assert_eq!(seg.live_blocks(), 0);
        assert!(h.stats.atomic_ops >= 2);
    }

    #[test]
    fn mark_shared_preserves_counts_across_diamonds() {
        let mut h = heap();
        let mut seg = SharedHeap::new();
        // Diamond: root -> (left, right), both -> base (count 2).
        let base = cell(&mut h, vec![Value::Int(0)]);
        h.dup(Value::Ref(base)).unwrap();
        let left = cell(&mut h, vec![Value::Ref(base)]);
        let right = cell(&mut h, vec![Value::Ref(base)]);
        let root = cell(&mut h, vec![Value::Ref(left), Value::Ref(right)]);
        let shared = h.mark_shared(Value::Ref(root), &mut seg).unwrap();
        assert_eq!(seg.len(), 4, "base moved once, not twice");
        let seg = Arc::new(seg);
        h.attach_shared(seg.clone());
        let Value::Ref(sroot) = shared else { panic!() };
        let Value::Ref(sleft) = h.view(sroot).unwrap().fields[0] else {
            panic!()
        };
        let Value::Ref(sbase) = h.view(sleft).unwrap().fields[0] else {
            panic!()
        };
        assert_eq!(h.view(sbase).unwrap().header, -2, "count carried over");
        h.drop_value(shared).unwrap();
        assert_eq!(seg.live_blocks(), 0, "diamond fully reclaimed");
    }

    #[test]
    fn mark_shared_rejects_mutable_references() {
        let mut h = heap();
        let mut seg = SharedHeap::new();
        let r = h.alloc(BlockTag::MutRef, vec![Value::Int(3)].into_boxed_slice());
        let holder = cell(&mut h, vec![Value::Ref(r)]);
        let err = h.mark_shared(Value::Ref(holder), &mut seg).unwrap_err();
        assert!(
            matches!(&err, RuntimeError::Internal(m) if m.contains("mutable reference")),
            "{err}"
        );
    }

    #[test]
    fn shared_blocks_are_never_unique_and_never_reused() {
        let mut h = heap();
        let mut seg = SharedHeap::new();
        let a = cell(&mut h, vec![Value::Int(4)]);
        let shared = h.mark_shared(Value::Ref(a), &mut seg).unwrap();
        seg.retain(shared, 1).unwrap(); // a second owner
        h.attach_shared(Arc::new(seg));
        assert!(!h.is_unique(shared).unwrap());
        let tok = h.drop_reuse(shared).unwrap();
        assert_eq!(tok, Value::Token(None), "shared cells yield no token");
        h.drop_value(shared).unwrap();
        assert_eq!(h.shared_segment().unwrap().live_blocks(), 0);
        // Real atomics were paid: the is-unique probe is free, but the
        // decrement and the final drop each did one RMW.
        assert_eq!(h.stats.atomic_ops, 2);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut h = heap();
        let a = cell(&mut h, vec![]);
        h.drop_value(Value::Ref(a)).unwrap();
        let b = cell(&mut h, vec![]);
        assert_eq!(a.index, b.index, "slot recycled");
        assert_ne!(a.gen, b.gen, "generation bumped");
        assert!(h.block(a).is_err());
        assert!(h.block(b).is_ok());
        h.drop_value(Value::Ref(b)).unwrap();
    }

    // ---- size-class free-list allocator ------------------------------

    #[test]
    fn freelist_hit_recycles_storage_and_bumps_generation() {
        let mut h = heap();
        let a = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &[Value::Int(1), Value::Int(2)]);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.listed_blocks(), 1);
        let b = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &[Value::Int(3), Value::Int(4)]);
        assert_eq!(h.stats.freelist_hits, 1);
        assert_eq!(h.stats.recycled_words, 3);
        assert_eq!(a.index, b.index, "same slot recycled");
        assert_ne!(a.gen, b.gen, "generation bumped across recycling");
        // The stale address is a deterministic error, never the new cell.
        assert!(matches!(h.block(a), Err(RuntimeError::UseAfterFree(_))));
        assert_eq!(h.block(b).unwrap().fields[0], Value::Int(3));
        h.drop_value(Value::Ref(b)).unwrap();
    }

    #[test]
    fn size_classes_never_serve_wrong_sized_blocks() {
        let mut h = heap();
        // Retire one block in each of three classes.
        let a1 = h.alloc_slice(BlockTag::Ctor(CtorId(1)), &[Value::Int(1)]);
        let a2 = h.alloc_slice(BlockTag::Ctor(CtorId(2)), &[Value::Int(1), Value::Int(2)]);
        let a3 = h.alloc_slice(
            BlockTag::Ctor(CtorId(3)),
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
        );
        for a in [a1, a2, a3] {
            h.drop_value(Value::Ref(a)).unwrap();
        }
        assert_eq!(h.free_list_occupancy(), vec![(1, 1), (2, 1), (3, 1)]);
        // A 2-field allocation must come from the 2-field class only.
        let b = h.alloc_slice(BlockTag::Ctor(CtorId(4)), &[Value::Int(7), Value::Int(8)]);
        assert_eq!(h.block(b).unwrap().fields.len(), 2);
        assert_eq!(b.index, a2.index, "exact-fit class served the slot");
        assert_eq!(h.free_list_occupancy(), vec![(1, 1), (3, 1)]);
        // A 4-field allocation misses every list (no 4-class block).
        let misses_before = h.stats.freelist_misses;
        let c = h.alloc_slice(
            BlockTag::Ctor(CtorId(5)),
            &[Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
        );
        assert_eq!(h.stats.freelist_misses, misses_before + 1);
        assert_eq!(h.block(c).unwrap().fields.len(), 4);
        h.drop_value(Value::Ref(b)).unwrap();
        h.drop_value(Value::Ref(c)).unwrap();
    }

    #[test]
    fn oversize_blocks_fall_back_to_the_global_allocator() {
        let mut h = heap();
        let big: Vec<Value> = (0..NUM_SIZE_CLASSES as i64 + 4).map(Value::Int).collect();
        let a = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &big);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.listed_blocks(), 0, "oversize storage is not retained");
        // The slot index itself is still recycled (spare list).
        let b = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &big);
        assert_eq!(a.index, b.index);
        assert_ne!(a.gen, b.gen);
        assert_eq!(h.stats.freelist_hits, 0);
        h.drop_value(Value::Ref(b)).unwrap();
    }

    #[test]
    fn recycling_off_restores_malloc_discipline() {
        let mut h = Heap::with_config(
            ReclaimMode::Rc,
            HeapConfig {
                recycle: false,
                ..HeapConfig::default()
            },
        );
        let a = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &[Value::Int(1)]);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.listed_blocks(), 0);
        let b = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &[Value::Int(2)]);
        assert_eq!(h.stats.freelist_hits, 0);
        assert_eq!(h.stats.freelist_misses, 0, "misses not counted when off");
        // Slot indices still recycle through the spare list; generations
        // still protect against stale addresses.
        assert_eq!(a.index, b.index);
        assert!(h.block(a).is_err());
        h.drop_value(Value::Ref(b)).unwrap();
    }

    #[test]
    fn listed_blocks_are_not_live_and_not_readable() {
        let mut h = heap();
        let a = cell(&mut h, vec![Value::Int(5)]);
        h.drop_value(Value::Ref(a)).unwrap();
        assert_eq!(h.live_blocks(), 0);
        assert_eq!(h.listed_blocks(), 1);
        assert_eq!(h.iter_live().count(), 0, "listed blocks are invisible");
        assert!(matches!(h.block(a), Err(RuntimeError::UseAfterFree(_))));
    }

    #[test]
    fn freelist_roundtrip_preserves_rc_semantics_under_churn() {
        // A hot loop in one class plus interleaved other classes: the
        // steady state allocates entirely from the free lists.
        let mut h = heap();
        let warm = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &[Value::Int(0), Value::Int(0)]);
        h.drop_value(Value::Ref(warm)).unwrap();
        let fresh_before = h.stats.allocations;
        for i in 0..1000 {
            let a = h.alloc_slice(
                BlockTag::Ctor(CtorId(9)),
                &[Value::Int(i), Value::Int(i + 1)],
            );
            let b = h.alloc_slice(BlockTag::Ctor(CtorId(9)), &[Value::Ref(a)]);
            h.drop_value(Value::Ref(b)).unwrap();
        }
        assert_eq!(h.live_blocks(), 0);
        assert_eq!(h.stats.allocations - fresh_before, 2000);
        // Only the very first 1-field alloc can miss; everything else is
        // served from the lists.
        assert!(h.stats.freelist_hits >= 1999, "{}", h.stats.freelist_hits);
        assert!(h.stats.recycled_words >= 1999 * 2);
    }
}
