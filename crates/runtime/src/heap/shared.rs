//! The thread-shared heap segment — the *real* atomic half of §2.7.2's
//! dual-mode reference counting, extended with the CIRC-style surface
//! of SNIPPETS.md snippet 1: epoch-protected **snapshot reads** that pay
//! zero atomic RMWs, **weak references** for the §2.7.3 cycle scenario,
//! and **epoch-based reclamation** of dead slots.
//!
//! Thread-local blocks live in [`crate::heap::Heap`] and pay plain
//! non-atomic counting. When a value crosses a thread boundary,
//! [`crate::heap::Heap::mark_shared`] moves its whole reachable closure
//! into a `SharedHeap`. Each slot's header packs **two counts into one
//! `AtomicU64`**: the low 32 bits are the *strong* count in the paper's
//! negative encoding (more negative = more references, `0` = dead,
//! at or below [`STICKY`] = pinned forever), the high 32 bits are the
//! *weak* count. A single sign test on the strong half still
//! distinguishes the fast path from the slow path.
//!
//! Concurrency model:
//!
//! * the segment is **frozen before it is shared**: blocks are installed
//!   through `&mut self`, then the whole segment is wrapped in an `Arc`
//!   and handed to the worker threads. Fields are never *written* again
//!   — but since dead slots are now reclaimed, field *storage* may be
//!   released mid-run, so reads are protected by the epoch scheme of
//!   [`crate::heap::epoch`] (every attached heap is a pinned
//!   participant; see the module docs there for the full argument);
//! * **snapshot reads pay no RMW at all**: code compiled with borrow
//!   inference (L3, `PassConfig::perceus_borrowing`) never consumes a
//!   borrowed parameter, so a read-only traversal of a shared structure
//!   executes zero `dup`/`drop` — the pinned epoch guard alone keeps
//!   the storage alive. `Stats::atomic_ops` stays exactly 0 on that
//!   path, which is what restores near-linear read scaling;
//! * `dup`/`drop`/`upgrade`/weak ops are the only run-time mutations,
//!   and they touch only the atomic header. Increments use relaxed
//!   ordering; `drop` uses acquire-release (the `Arc` protocol);
//! * a drop that wins the race to zero marks the block dead (strong
//!   half 0), pushes its strong children onto the *caller's* worklist,
//!   releases its weak children inline, updates the packed live/free
//!   gauge with **one** RMW (so `installs == live_blocks + frees` holds
//!   under any interleaving — the gauge-skew fix), and **retires the
//!   slot through the epoch queue**. [`SharedHeap::try_reclaim`] later
//!   frees the field storage once no pinned reader can still hold a
//!   view of it — dead slots no longer live until segment drop;
//! * a [`Weak`](Value::Weak) reference never keeps a block alive and
//!   never reads its fields: `upgrade` CASes the strong count back up
//!   and fails deterministically once the block is dead. Weak counts
//!   live in the slot entry (header + generation + tag), which is never
//!   freed, so dangling weaks are always safe and always detected.
//!
//! Shared blocks only ever reference other shared blocks (`mark_shared`
//! moves transitively), which is what makes the per-thread local heaps
//! independent: no local block is ever reachable from another thread.

use crate::error::RuntimeError;
use crate::heap::epoch::Collector;
use crate::heap::stats::Stats;
use crate::heap::{BlockTag, BlockView, STICKY};
use crate::value::{Addr, Value};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

// ---- packed header helpers -------------------------------------------
//
// One `AtomicU64` per slot: low 32 bits = strong count as an `i32` in
// the negative encoding (0 dead, <0 live, <=STICKY pinned), high 32
// bits = weak count as a `u32`. Packing keeps strong/weak transitions
// single-RMW and lets the closing CAS observe both halves at once.

#[inline]
fn strong_of(h: u64) -> i32 {
    h as u32 as i32
}

#[inline]
fn weak_of(h: u64) -> u32 {
    (h >> 32) as u32
}

#[inline]
fn pack(strong: i32, weak: u32) -> u64 {
    ((weak as u64) << 32) | (strong as u32 as u64)
}

/// A block in the shared segment.
struct SharedSlot {
    /// Packed strong/weak header (see module docs).
    header: AtomicU64,
    /// Slot generation, bumped when the storage is reclaimed. Strong
    /// operations validate it, so even a hypothetical future slot reuse
    /// keeps stale addresses deterministic ([`RuntimeError::UseAfterFree`]).
    gen: AtomicU32,
    tag: BlockTag,
    /// Field storage. Immutable after the freeze; replaced with an
    /// empty box by [`SharedHeap::try_reclaim`] once the epoch scheme
    /// proves no reader can hold a view (the single writer is whoever
    /// drained the slot's index from the retirement queue — the queue
    /// mutex hands each index to exactly one caller, ever).
    fields: UnsafeCell<Box<[Value]>>,
}

// SAFETY: `fields` is written (a) before the freeze through `&mut self`
// and (b) by the single reclaimer that drained this slot's index, at a
// point where the epoch collector proves no participant can hold a
// borrow of the storage and the dead header turns every new access into
// a deterministic error. All other access is read-only.
unsafe impl Sync for SharedSlot {}
unsafe impl Send for SharedSlot {}

impl SharedSlot {
    /// SAFETY: caller must be a pinned participant (or the segment must
    /// be quiescent); see the struct-level safety comment.
    #[inline]
    unsafe fn fields(&self) -> &[Value] {
        unsafe { &*self.fields.get() }
    }

    fn words(&self) -> u64 {
        // Pre-freeze / quiescent use only (install, join audits).
        unsafe { self.fields() }.len() as u64 + 1
    }
}

/// The append-only thread-shared segment. Built single-threadedly (via
/// `&mut self`), then frozen in an `Arc` and attached to every worker's
/// local [`crate::heap::Heap`].
#[derive(Default)]
pub struct SharedHeap {
    slots: Vec<SharedSlot>,
    /// Blocks moved in by the share barrier.
    installs: u64,
    /// Words moved in (fields + header), for the working-set figures.
    install_words: u64,
    /// Packed gauge: `(live_blocks << 32) | frees`. The closing CAS
    /// updates both halves with one RMW, so any snapshot observes
    /// `installs == live_blocks + frees` exactly — never the transient
    /// skew three independent counters allowed.
    counts: AtomicU64,
    /// Currently live words. Updated separately from `counts` (word
    /// sizes do not pack), so it may trail the block gauge by a few
    /// words mid-race; it is advisory, used only for working-set plots.
    live_words: AtomicU64,
    /// Dead slots whose storage was actually released by
    /// [`SharedHeap::try_reclaim`].
    reclaimed_blocks: AtomicU64,
    /// Field words released by reclamation (excluding the header word,
    /// which lives in the slot entry and is never released).
    reclaimed_words: AtomicU64,
    /// The epoch collector guarding field storage (see
    /// [`crate::heap::epoch`]).
    epoch: Collector,
}

impl SharedHeap {
    /// An empty segment.
    pub fn new() -> Self {
        SharedHeap::default()
    }

    /// Number of slots ever installed (live + dead).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no block was ever installed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently live shared blocks.
    pub fn live_blocks(&self) -> u64 {
        self.counts.load(Ordering::Acquire) >> 32
    }

    /// The epoch collector guarding this segment's storage. Attached
    /// heaps register here; tests and drivers may inspect it.
    pub fn collector(&self) -> &Collector {
        &self.epoch
    }

    /// `(blocks, field_words)` physically released by reclamation.
    pub fn reclaimed(&self) -> (u64, u64) {
        (
            self.reclaimed_blocks.load(Ordering::Acquire),
            self.reclaimed_words.load(Ordering::Acquire),
        )
    }

    /// Installs a block moved in by the share barrier. `count` is the
    /// (positive) number of outstanding references; `pinned` carries a
    /// sticky local count over into the shared encoding. A count so
    /// large it would cross the sticky floor is clamped *at* the floor
    /// — pinning the block — rather than silently landing below it
    /// (the same overflow discipline `retain` applies).
    pub(crate) fn install(
        &mut self,
        tag: BlockTag,
        fields: Box<[Value]>,
        count: u32,
        pinned: bool,
    ) -> Addr {
        debug_assert!(count >= 1, "shared install with no outstanding references");
        let strong = if pinned {
            STICKY
        } else {
            (-(count.min(i32::MAX as u32) as i32)).max(STICKY)
        };
        let slot = self.slots.len() as u32;
        debug_assert!(slot < u32::MAX, "shared segment gauge overflow");
        let words = fields.len() as u64 + 1;
        self.slots.push(SharedSlot {
            header: AtomicU64::new(pack(strong, 0)),
            gen: AtomicU32::new(0),
            tag,
            fields: UnsafeCell::new(fields),
        });
        self.installs += 1;
        self.install_words += words;
        *self.counts.get_mut() += 1 << 32;
        *self.live_words.get_mut() += words;
        Addr::shared(slot, 0)
    }

    /// Builder API (pre-freeze): installs a block directly into the
    /// segment with `count` outstanding strong references. Used by
    /// drivers and tests that construct shared structures — e.g. the
    /// §2.7.3 cycle demonstration — without routing through a local
    /// heap (whose `mark_shared` barrier rejects cyclic data).
    pub fn alloc(&mut self, tag: BlockTag, fields: Box<[Value]>, count: u32) -> Addr {
        self.install(tag, fields, count, false)
    }

    /// Builder API (pre-freeze): mints a weak reference to `addr`,
    /// bumping its weak count non-atomically. The returned
    /// [`Value::Weak`] owns one weak count (released by a later
    /// `drop`).
    pub fn downgrade(&mut self, addr: Addr) -> Result<Value, RuntimeError> {
        let slot = self.slot_mut(addr)?;
        let h = slot.header.get_mut();
        if strong_of(*h) == 0 {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        *h = pack(strong_of(*h), weak_of(*h).saturating_add(1));
        Ok(Value::Weak(addr))
    }

    /// Builder API (pre-freeze): overwrites field `idx` of `parent` —
    /// the knot-tying write that makes cyclic structures (forward
    /// strong edges + weak back edges) constructible. The overwritten
    /// value must not own references (pass the placeholder it was
    /// installed with, e.g. `Value::Unit`).
    pub fn link(&mut self, parent: Addr, idx: usize, v: Value) -> Result<(), RuntimeError> {
        let slot = self.slot_mut(parent)?;
        if strong_of(*slot.header.get_mut()) == 0 {
            return Err(RuntimeError::UseAfterFree(parent));
        }
        let fields = slot.fields.get_mut();
        let Some(f) = fields.get_mut(idx) else {
            return Err(RuntimeError::Internal(format!(
                "link: block {parent} has no field {idx}"
            )));
        };
        debug_assert!(
            !f.is_ref() && !matches!(f, Value::Weak(_)),
            "link would overwrite an owning reference"
        );
        *f = v;
        Ok(())
    }

    /// Adds `extra` references to a shared value before the segment is
    /// frozen (the driver uses this to hand each worker thread its own
    /// reference to the shared root). Non-atomic: requires `&mut self`.
    pub fn retain(&mut self, v: Value, extra: u32) -> Result<(), RuntimeError> {
        let Value::Ref(addr) = v else { return Ok(()) };
        let slot = self.slot_mut(addr)?;
        let h = slot.header.get_mut();
        let s = strong_of(*h);
        if s == 0 {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        if s > 0 {
            return Err(RuntimeError::Internal(format!(
                "shared block {addr} has non-shared header {s}"
            )));
        }
        if s > STICKY {
            // More negative = more references; clamping at the sticky
            // floor pins the block (the overflow discipline of §2.7.2).
            let s = s
                .saturating_sub(extra.min(i32::MAX as u32) as i32)
                .max(STICKY);
            *h = pack(s, weak_of(*h));
        }
        Ok(())
    }

    fn slot(&self, addr: Addr) -> Result<&SharedSlot, RuntimeError> {
        debug_assert!(addr.is_shared());
        self.slots
            .get(addr.shared_slot())
            .ok_or(RuntimeError::BadAddress(addr))
    }

    fn slot_mut(&mut self, addr: Addr) -> Result<&mut SharedSlot, RuntimeError> {
        debug_assert!(addr.is_shared());
        self.slots
            .get_mut(addr.shared_slot())
            .ok_or(RuntimeError::BadAddress(addr))
    }

    /// Generation-validated slot access for strong operations: a stale
    /// generation (the slot was reclaimed, and hypothetically reused)
    /// is a deterministic use-after-free, mirroring the local heap.
    fn live_slot(&self, addr: Addr) -> Result<&SharedSlot, RuntimeError> {
        let slot = self.slot(addr)?;
        if slot.gen.load(Ordering::Acquire) != addr.gen {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        Ok(slot)
    }

    /// Reads a block. Dead slots (strong count already zero) surface as
    /// a deterministic use-after-free, mirroring the generation check
    /// of the local heap.
    ///
    /// The caller must be an epoch participant pinned no later than any
    /// retirement of this slot (every attached [`crate::heap::Heap`]
    /// is), or the segment must be quiescent — that is what makes the
    /// returned field borrow safe against concurrent reclamation.
    pub(crate) fn view(&self, addr: Addr) -> Result<BlockView<'_>, RuntimeError> {
        let slot = self.live_slot(addr)?;
        let header = slot.header.load(Ordering::Acquire);
        if strong_of(header) == 0 {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        // SAFETY: strong count observed nonzero under the caller's pin
        // (or quiescence): the storage cannot be reclaimed while this
        // borrow lives (see module docs and `epoch`).
        let fields = unsafe { slot.fields() };
        Ok(BlockView {
            header: strong_of(header),
            tag: slot.tag,
            fields,
            shared: true,
        })
    }

    /// `dup` on a shared block: one real atomic RMW toward the sticky
    /// floor (relaxed ordering suffices for increments, as in `Arc`).
    /// Pinned blocks are left untouched without any RMW. Returns the
    /// strong header after the operation and whether an RMW actually
    /// happened (false for pinned blocks, whose counts are frozen by
    /// design) — the caller's per-session reference ledger only moves
    /// when the count does.
    pub(crate) fn dup(&self, addr: Addr, stats: &mut Stats) -> Result<(i32, bool), RuntimeError> {
        let slot = self.live_slot(addr)?;
        match slot
            .header
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                let s = strong_of(h);
                if s > STICKY && s < 0 {
                    Some(pack(s - 1, weak_of(h)))
                } else {
                    None
                }
            }) {
            Ok(prev) => {
                stats.atomic_ops += 1;
                Ok((strong_of(prev) - 1, true))
            }
            Err(h) => match strong_of(h) {
                0 => Err(RuntimeError::UseAfterFree(addr)),
                pinned if pinned <= STICKY => Ok((pinned, false)),
                bad => Err(RuntimeError::Internal(format!(
                    "shared block {addr} has non-shared header {bad}"
                ))),
            },
        }
    }

    /// `drop` on a shared block: one real atomic RMW with
    /// acquire-release ordering. Exactly one thread observes the count
    /// reach zero; that thread pushes the strong children onto `work`
    /// (they are shared blocks themselves), releases the weak children
    /// inline, updates the packed live/free gauge with a single RMW,
    /// and retires the slot through the epoch queue. Returns the strong
    /// header after the operation and whether an RMW actually happened
    /// (false for pinned blocks).
    pub(crate) fn drop_ref(
        &self,
        addr: Addr,
        stats: &mut Stats,
        work: &mut Vec<Addr>,
    ) -> Result<(i32, bool), RuntimeError> {
        let slot = self.live_slot(addr)?;
        match slot
            .header
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |h| {
                let s = strong_of(h);
                if s > STICKY && s < 0 {
                    Some(pack(s + 1, weak_of(h)))
                } else {
                    None
                }
            }) {
            Ok(prev) => {
                stats.atomic_ops += 1;
                let after = strong_of(prev) + 1;
                if after == 0 {
                    // This thread won the closing CAS: release the
                    // children exactly once. We are a pinned epoch
                    // participant and the slot cannot have been retired
                    // before this very CAS, so the field read is safe;
                    // racing threads with stale addresses fail
                    // deterministically on the dead strong count.
                    // SAFETY: see above.
                    let fields = unsafe { slot.fields() };
                    for f in fields.iter() {
                        match f {
                            Value::Ref(child) => {
                                debug_assert!(
                                    child.is_shared(),
                                    "shared block held a thread-local reference"
                                );
                                work.push(*child);
                            }
                            Value::Weak(child) => {
                                // Weak edges never cascade: release the
                                // count inline.
                                self.weak_drop(*child, stats)?;
                            }
                            _ => {}
                        }
                    }
                    // One RMW moves a block from `live` to `freed`:
                    // `installs == live_blocks + frees` holds at every
                    // instant, under any interleaving.
                    self.counts
                        .fetch_add((u64::MAX << 32) | 1, Ordering::AcqRel);
                    self.live_words.fetch_sub(slot.words(), Ordering::AcqRel);
                    // Defer the storage free until no pinned reader can
                    // hold a view (the retention fix: dead slots no
                    // longer live until segment drop).
                    self.epoch.retire(addr.shared_slot() as u32);
                }
                Ok((after, true))
            }
            Err(h) => match strong_of(h) {
                0 => Err(RuntimeError::UseAfterFree(addr)),
                pinned if pinned <= STICKY => Ok((pinned, false)),
                bad => Err(RuntimeError::Internal(format!(
                    "shared block {addr} has non-shared header {bad}"
                ))),
            },
        }
    }

    // ---- weak references (§2.7.3 via CIRC's Weak) --------------------

    /// Clones a weak reference: one RMW on the weak half. Legal even
    /// when the block is already dead (a weak of a dead block is still
    /// a value); the count saturates at `u32::MAX` (then pinned, like
    /// the sticky floor).
    pub(crate) fn weak_dup(&self, addr: Addr, stats: &mut Stats) -> Result<u32, RuntimeError> {
        let slot = self.slot(addr)?;
        let prev = slot
            .header
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                match weak_of(h) {
                    u32::MAX => None, // saturated: pinned, no RMW
                    w => Some(pack(strong_of(h), w + 1)),
                }
            });
        match prev {
            Ok(h) => {
                stats.atomic_ops += 1;
                Ok(weak_of(h) + 1)
            }
            Err(h) => Ok(weak_of(h)),
        }
    }

    /// Releases a weak reference: one RMW on the weak half. The slot
    /// entry itself (header, generation, tag) is never freed, so this
    /// is always safe — even long after the storage was reclaimed.
    pub(crate) fn weak_drop(&self, addr: Addr, stats: &mut Stats) -> Result<u32, RuntimeError> {
        let slot = self.slot(addr)?;
        let prev =
            slot.header
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |h| match weak_of(h) {
                    0 => None,
                    u32::MAX => None, // saturated: pinned
                    w => Some(pack(strong_of(h), w - 1)),
                });
        match prev {
            Ok(h) => {
                stats.atomic_ops += 1;
                Ok(weak_of(h) - 1)
            }
            Err(h) if weak_of(h) == u32::MAX => Ok(u32::MAX),
            Err(_) => Err(RuntimeError::Internal(format!(
                "weak over-release on shared block {addr}"
            ))),
        }
    }

    /// Attempts to upgrade a weak reference to a strong one: a CAS that
    /// re-increments the strong count *only if the block is still
    /// alive*. Returns `Ok(Some((after, counted)))` on success (the
    /// caller now owns one strong reference; `counted` is false for
    /// pinned blocks, where no RMW ran) or `Ok(None)` —
    /// deterministically — once the block is dead. The weak reference
    /// itself is not consumed.
    pub(crate) fn upgrade(
        &self,
        addr: Addr,
        stats: &mut Stats,
    ) -> Result<Option<(i32, bool)>, RuntimeError> {
        let slot = self.slot(addr)?;
        match slot
            .header
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |h| {
                let s = strong_of(h);
                if s > STICKY && s < 0 {
                    Some(pack(s - 1, weak_of(h)))
                } else {
                    None
                }
            }) {
            Ok(prev) => {
                stats.atomic_ops += 1;
                Ok(Some((strong_of(prev) - 1, true)))
            }
            Err(h) => match strong_of(h) {
                0 => Ok(None), // dead: upgrade fails deterministically
                pinned if pinned <= STICKY => Ok(Some((pinned, false))),
                bad => Err(RuntimeError::Internal(format!(
                    "shared block {addr} has non-shared header {bad}"
                ))),
            },
        }
    }

    /// The current weak count of a slot (tests / audits).
    pub fn weak_count(&self, addr: Addr) -> Result<u32, RuntimeError> {
        Ok(weak_of(self.slot(addr)?.header.load(Ordering::Acquire)))
    }

    // ---- epoch reclamation -------------------------------------------

    /// Releases the field storage of every retired slot no pinned
    /// participant can still see (see [`crate::heap::epoch`]). Returns
    /// the number of slots reclaimed. Called from
    /// [`crate::heap::Heap::attach_shared`] / detach and callable any
    /// time; the caller must not hold a [`BlockView`] into this segment
    /// across the call unless it is a pinned participant (attached
    /// heaps always are — their pin makes their own views safe).
    pub fn try_reclaim(&self) -> u64 {
        let mut safe = Vec::new();
        self.epoch.drain_safe(&mut safe);
        if safe.is_empty() {
            return 0;
        }
        let mut blocks = 0;
        let mut words = 0;
        for idx in safe {
            let slot = &self.slots[idx as usize];
            debug_assert_eq!(
                strong_of(slot.header.load(Ordering::Acquire)),
                0,
                "reclaiming a live slot"
            );
            // Bump the generation first: even a (buggy) racing strong
            // access now fails the generation check before the swap.
            slot.gen.fetch_add(1, Ordering::AcqRel);
            // SAFETY: this thread drained `idx` from the retirement
            // queue, so it is the unique writer; the epoch frontier
            // proves no participant still holds a borrow of the
            // storage, and the dead header denies every new borrow.
            let storage = unsafe { &mut *slot.fields.get() };
            words += storage.len() as u64;
            *storage = Box::new([]);
            blocks += 1;
        }
        self.reclaimed_blocks.fetch_add(blocks, Ordering::AcqRel);
        self.reclaimed_words.fetch_add(words, Ordering::AcqRel);
        blocks
    }

    /// Iterates every slot with its current strong header, weak count
    /// and fields (audit support; call only when the segment is
    /// quiescent — e.g. at thread join). Reclaimed slots show their
    /// dead header and empty fields.
    pub(crate) fn iter_slots(&self) -> impl Iterator<Item = (Addr, i32, u32, &[Value])> + '_ {
        self.slots.iter().enumerate().map(|(i, s)| {
            let h = s.header.load(Ordering::Acquire);
            (
                Addr::shared(i as u32, s.gen.load(Ordering::Acquire)),
                strong_of(h),
                weak_of(h),
                // SAFETY: quiescent by contract — no concurrent
                // reclaimer can swap the storage under this borrow.
                unsafe { s.fields() },
            )
        })
    }

    /// A `Stats` snapshot for this segment, mergeable with the worker
    /// threads' stats. Blocks moved in by the share barrier were already
    /// counted as allocations *and* as `shared_marks` by the marking
    /// heap (the barrier transfers live accounting rather than
    /// re-counting), so only the segment's own gauges and run-time
    /// frees appear here.
    ///
    /// Consistency: `live_blocks` and `frees` come from one packed
    /// atomic load, so `installs == live_blocks + frees` holds exactly
    /// even while other threads race their closing CASes.
    pub fn snapshot(&self) -> Stats {
        let counts = self.counts.load(Ordering::Acquire);
        Stats {
            frees: counts & 0xFFFF_FFFF,
            live_blocks: counts >> 32,
            live_words: self.live_words.load(Ordering::Acquire),
            // The segment's high-water mark is its build-time size: it
            // only shrinks after the freeze.
            peak_live_blocks: self.installs,
            peak_live_words: self.install_words,
            ..Stats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_core::ir::CtorId;

    fn ctor() -> BlockTag {
        BlockTag::Ctor(CtorId(0))
    }

    #[test]
    fn install_clamps_huge_counts_at_the_sticky_floor() {
        let mut seg = SharedHeap::new();
        // One below the floor magnitude: plain (very) negative count.
        let near = seg.install(ctor(), Box::new([]), STICKY.unsigned_abs() - 1, false);
        let v = seg.view(near).unwrap();
        assert_eq!(v.header, -((STICKY.unsigned_abs() - 1) as i32));
        assert!(v.header > STICKY);
        // At and beyond the floor magnitude: clamped exactly at STICKY,
        // never silently below it.
        for count in [STICKY.unsigned_abs(), STICKY.unsigned_abs() + 1, u32::MAX] {
            let a = seg.install(ctor(), Box::new([]), count, false);
            assert_eq!(seg.view(a).unwrap().header, STICKY, "count {count}");
            // Pinned: dup performs no RMW and reports no count motion.
            let mut stats = Stats::default();
            let (after, counted) = seg.dup(a, &mut stats).unwrap();
            assert_eq!(after, STICKY);
            assert!(!counted);
            assert_eq!(stats.atomic_ops, 0);
        }
    }

    #[test]
    fn packed_gauge_keeps_installs_equal_to_live_plus_frees() {
        let mut seg = SharedHeap::new();
        let a = seg.install(ctor(), Box::new([]), 1, false);
        let b = seg.install(ctor(), Box::new([]), 1, false);
        let snap = seg.snapshot();
        assert_eq!(snap.live_blocks, 2);
        assert_eq!(snap.frees, 0);
        let mut stats = Stats::default();
        let mut work = Vec::new();
        seg.drop_ref(a, &mut stats, &mut work).unwrap();
        let snap = seg.snapshot();
        assert_eq!(snap.live_blocks + snap.frees, 2);
        assert_eq!(snap.frees, 1);
        seg.drop_ref(b, &mut stats, &mut work).unwrap();
        let snap = seg.snapshot();
        assert_eq!(snap.live_blocks, 0);
        assert_eq!(snap.frees, 2);
    }

    #[test]
    fn dead_slots_retire_through_the_epoch_queue_and_reclaim() {
        let mut seg = SharedHeap::new();
        let payload: Box<[Value]> = (0..8).map(Value::Int).collect();
        let a = seg.install(ctor(), payload, 1, false);
        let mut stats = Stats::default();
        let mut work = Vec::new();
        seg.drop_ref(a, &mut stats, &mut work).unwrap();
        assert_eq!(seg.collector().pending(), 1, "retired, not yet freed");
        assert_eq!(seg.reclaimed(), (0, 0));
        // No participants: reclaimable immediately.
        assert_eq!(seg.try_reclaim(), 1);
        assert_eq!(seg.reclaimed(), (1, 8));
        // Stale strong access after reclaim: deterministic error (the
        // generation no longer matches).
        assert!(matches!(seg.view(a), Err(RuntimeError::UseAfterFree(_))));
        let mut stats = Stats::default();
        assert!(seg.dup(a, &mut stats).is_err());
    }

    #[test]
    fn a_pinned_participant_blocks_reclaim_until_it_ticks() {
        let mut seg = SharedHeap::new();
        let a = seg.install(ctor(), Box::new([Value::Int(1)]), 1, false);
        let reader = seg.collector().register();
        let mut stats = Stats::default();
        let mut work = Vec::new();
        seg.drop_ref(a, &mut stats, &mut work).unwrap();
        assert_eq!(seg.try_reclaim(), 0, "reader pinned before retirement");
        seg.collector().repin(&reader); // quiescent tick
        assert_eq!(seg.try_reclaim(), 1);
        seg.collector().unregister(&reader);
    }

    #[test]
    fn weak_upgrade_succeeds_live_and_fails_dead_deterministically() {
        let mut seg = SharedHeap::new();
        let a = seg.alloc(ctor(), Box::new([Value::Int(7)]), 1);
        let w = seg.downgrade(a).unwrap();
        let Value::Weak(wa) = w else { panic!() };
        assert_eq!(seg.weak_count(a).unwrap(), 1);
        let mut stats = Stats::default();
        // Live: upgrade mints a strong reference.
        let up = seg.upgrade(wa, &mut stats).unwrap();
        assert_eq!(up, Some((-2, true)));
        let mut work = Vec::new();
        seg.drop_ref(wa, &mut stats, &mut work).unwrap(); // return upgraded ref
        seg.drop_ref(a, &mut stats, &mut work).unwrap(); // last strong: dead

        // Dead: upgrade fails deterministically, forever — even after
        // the storage is physically reclaimed.
        assert_eq!(seg.upgrade(wa, &mut stats).unwrap(), None);
        seg.try_reclaim();
        assert_eq!(seg.upgrade(wa, &mut stats).unwrap(), None);
        // The weak count survives reclamation (the slot entry is never
        // freed) and releases cleanly.
        assert_eq!(seg.weak_count(wa).unwrap(), 1);
        seg.weak_drop(wa, &mut stats).unwrap();
        assert_eq!(seg.weak_count(wa).unwrap(), 0);
    }

    #[test]
    fn closing_cas_releases_weak_children_inline() {
        let mut seg = SharedHeap::new();
        let target = seg.alloc(ctor(), Box::new([]), 1);
        let w = seg.downgrade(target).unwrap();
        let holder = seg.alloc(ctor(), Box::new([w]), 1);
        assert_eq!(seg.weak_count(target).unwrap(), 1);
        let mut stats = Stats::default();
        let mut work = Vec::new();
        seg.drop_ref(holder, &mut stats, &mut work).unwrap();
        assert!(work.is_empty(), "weak edges never cascade");
        assert_eq!(seg.weak_count(target).unwrap(), 0, "released inline");
        seg.drop_ref(target, &mut stats, &mut work).unwrap();
        assert_eq!(seg.snapshot().live_blocks, 0);
    }
}
