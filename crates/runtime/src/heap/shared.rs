//! The thread-shared heap segment — the *real* atomic half of §2.7.2's
//! dual-mode reference counting (the scheme Counting Immutable Beans
//! deploys in Lean's multi-threaded runtime).
//!
//! Thread-local blocks live in [`crate::heap::Heap`] and pay plain
//! non-atomic counting. When a value crosses a thread boundary,
//! [`crate::heap::Heap::mark_shared`] moves its whole reachable closure
//! into a `SharedHeap`: an append-only segment whose block headers are
//! genuine [`AtomicI32`]s. Shared headers keep the paper's negative
//! encoding — more negative means more references, and counts at or
//! below [`STICKY`] are pinned forever — so a single sign test still
//! distinguishes the fast path from the slow path.
//!
//! Concurrency model:
//!
//! * the segment is **frozen before it is shared**: blocks are installed
//!   through `&mut self`, then the whole segment is wrapped in an `Arc`
//!   and handed to the worker threads. Fields are never written again,
//!   so field reads need no synchronization at all;
//! * `dup`/`drop` are the only run-time mutations, and they touch only
//!   the atomic header. `dup` uses relaxed ordering; `drop` uses
//!   acquire-release (the `Arc` protocol: the thread that takes the
//!   count to zero must observe every other thread's final use);
//! * a drop that wins the race to zero marks the block dead (header 0)
//!   and pushes its children onto the *caller's* worklist. Exactly one
//!   thread wins the closing CAS, so each block's children are released
//!   exactly once. The field storage itself is retained until the
//!   segment is dropped — a dead slot is unreachable (every live
//!   reference to it has been consumed) and any stale address surfaces
//!   as a deterministic [`RuntimeError::UseAfterFree`].
//!
//! Shared blocks only ever reference other shared blocks (`mark_shared`
//! moves transitively), which is what makes the per-thread local heaps
//! independent: no local block is ever reachable from another thread.

use crate::error::RuntimeError;
use crate::heap::stats::Stats;
use crate::heap::{BlockTag, BlockView, STICKY};
use crate::value::{Addr, Value};
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};

/// A block in the shared segment. The header is a real atomic: `0` is
/// dead, negative values are live shared counts (more negative = more
/// references), values at or below [`STICKY`] are pinned.
struct SharedSlot {
    header: AtomicI32,
    tag: BlockTag,
    fields: Box<[Value]>,
}

impl SharedSlot {
    fn words(&self) -> u64 {
        self.fields.len() as u64 + 1
    }
}

/// The append-only thread-shared segment. Built single-threadedly (via
/// `&mut self`), then frozen in an `Arc` and attached to every worker's
/// local [`crate::heap::Heap`].
#[derive(Default)]
pub struct SharedHeap {
    slots: Vec<SharedSlot>,
    /// Blocks moved in by the share barrier.
    installs: u64,
    /// Words moved in (fields + header), for the working-set figures.
    install_words: u64,
    /// Currently live blocks (decremented by racing drops).
    live_blocks: AtomicU64,
    /// Currently live words.
    live_words: AtomicU64,
    /// Blocks whose shared count reached zero at run time.
    frees: AtomicU64,
}

impl SharedHeap {
    /// An empty segment.
    pub fn new() -> Self {
        SharedHeap::default()
    }

    /// Number of slots ever installed (live + dead).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no block was ever installed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently live shared blocks.
    pub fn live_blocks(&self) -> u64 {
        self.live_blocks.load(Ordering::Acquire)
    }

    /// Installs a block moved in by the share barrier. `count` is the
    /// (positive) number of outstanding references; `pinned` carries a
    /// sticky local count over into the shared encoding.
    pub(crate) fn install(
        &mut self,
        tag: BlockTag,
        fields: Box<[Value]>,
        count: u32,
        pinned: bool,
    ) -> Addr {
        debug_assert!(count >= 1, "shared install with no outstanding references");
        let header = if pinned {
            STICKY
        } else {
            -(count.min(i32::MAX as u32) as i32)
        };
        let slot = self.slots.len() as u32;
        let words = fields.len() as u64 + 1;
        self.slots.push(SharedSlot {
            header: AtomicI32::new(header),
            tag,
            fields,
        });
        self.installs += 1;
        self.install_words += words;
        *self.live_blocks.get_mut() += 1;
        *self.live_words.get_mut() += words;
        Addr::shared(slot)
    }

    /// Adds `extra` references to a shared value before the segment is
    /// frozen (the driver uses this to hand each worker thread its own
    /// reference to the shared root). Non-atomic: requires `&mut self`.
    pub fn retain(&mut self, v: Value, extra: u32) -> Result<(), RuntimeError> {
        let Value::Ref(addr) = v else { return Ok(()) };
        let slot = self.slot_mut(addr)?;
        let h = slot.header.get_mut();
        if *h == 0 {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        if *h > 0 {
            return Err(RuntimeError::Internal(format!(
                "shared block {addr} has non-shared header {h}"
            )));
        }
        if *h > STICKY {
            // More negative = more references; clamping at the sticky
            // floor pins the block (the overflow discipline of §2.7.2).
            *h = h
                .saturating_sub(extra.min(i32::MAX as u32) as i32)
                .max(STICKY);
        }
        Ok(())
    }

    fn slot(&self, addr: Addr) -> Result<&SharedSlot, RuntimeError> {
        debug_assert!(addr.is_shared());
        self.slots
            .get(addr.shared_slot())
            .ok_or(RuntimeError::BadAddress(addr))
    }

    fn slot_mut(&mut self, addr: Addr) -> Result<&mut SharedSlot, RuntimeError> {
        debug_assert!(addr.is_shared());
        self.slots
            .get_mut(addr.shared_slot())
            .ok_or(RuntimeError::BadAddress(addr))
    }

    /// Reads a block. Dead slots (count already zero) surface as a
    /// deterministic use-after-free, mirroring the generation check of
    /// the local heap.
    pub(crate) fn view(&self, addr: Addr) -> Result<BlockView<'_>, RuntimeError> {
        let slot = self.slot(addr)?;
        let header = slot.header.load(Ordering::Acquire);
        if header == 0 {
            return Err(RuntimeError::UseAfterFree(addr));
        }
        Ok(BlockView {
            header,
            tag: slot.tag,
            fields: &slot.fields,
            shared: true,
        })
    }

    /// `dup` on a shared block: one real atomic RMW toward the sticky
    /// floor (relaxed ordering suffices for increments, as in `Arc`).
    /// Pinned blocks are left untouched without any RMW. Returns the
    /// header after the operation and whether an RMW actually happened
    /// (false for pinned blocks, whose counts are frozen by design) —
    /// the caller's per-session reference ledger only moves when the
    /// count does.
    pub(crate) fn dup(&self, addr: Addr, stats: &mut Stats) -> Result<(i32, bool), RuntimeError> {
        let slot = self.slot(addr)?;
        match slot
            .header
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                if h > STICKY && h < 0 {
                    Some(h - 1)
                } else {
                    None
                }
            }) {
            Ok(prev) => {
                stats.atomic_ops += 1;
                Ok((prev - 1, true))
            }
            Err(0) => Err(RuntimeError::UseAfterFree(addr)),
            Err(pinned) if pinned <= STICKY => Ok((pinned, false)),
            Err(bad) => Err(RuntimeError::Internal(format!(
                "shared block {addr} has non-shared header {bad}"
            ))),
        }
    }

    /// `drop` on a shared block: one real atomic RMW with
    /// acquire-release ordering. Exactly one thread observes the count
    /// reach zero; that thread pushes the children onto `work` (they are
    /// shared blocks themselves) and updates the live gauges. Returns
    /// the header after the operation and whether an RMW actually
    /// happened (false for pinned blocks).
    pub(crate) fn drop_ref(
        &self,
        addr: Addr,
        stats: &mut Stats,
        work: &mut Vec<Addr>,
    ) -> Result<(i32, bool), RuntimeError> {
        let slot = self.slot(addr)?;
        match slot
            .header
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |h| {
                if h > STICKY && h < 0 {
                    Some(h + 1)
                } else {
                    None
                }
            }) {
            Ok(prev) => {
                stats.atomic_ops += 1;
                let after = prev + 1;
                if after == 0 {
                    // This thread won the closing CAS: release the
                    // children exactly once. Fields are immutable and
                    // the storage is retained, so the read is safe even
                    // though other threads may race on stale addresses
                    // (they fail deterministically on the dead header).
                    for f in slot.fields.iter() {
                        if let Value::Ref(child) = f {
                            debug_assert!(
                                child.is_shared(),
                                "shared block held a thread-local reference"
                            );
                            work.push(*child);
                        }
                    }
                    self.live_blocks.fetch_sub(1, Ordering::AcqRel);
                    self.live_words.fetch_sub(slot.words(), Ordering::AcqRel);
                    self.frees.fetch_add(1, Ordering::AcqRel);
                }
                Ok((after, true))
            }
            Err(0) => Err(RuntimeError::UseAfterFree(addr)),
            Err(pinned) if pinned <= STICKY => Ok((pinned, false)),
            Err(bad) => Err(RuntimeError::Internal(format!(
                "shared block {addr} has non-shared header {bad}"
            ))),
        }
    }

    /// Iterates every slot with its current header (audit support; call
    /// only when the segment is quiescent — e.g. at thread join).
    pub(crate) fn iter_slots(&self) -> impl Iterator<Item = (Addr, i32, &[Value])> + '_ {
        self.slots.iter().enumerate().map(|(i, s)| {
            (
                Addr::shared(i as u32),
                s.header.load(Ordering::Acquire),
                &s.fields[..],
            )
        })
    }

    /// A `Stats` snapshot for this segment, mergeable with the worker
    /// threads' stats. Blocks moved in by the share barrier were already
    /// counted as allocations *and* as `shared_marks` by the marking
    /// heap (the barrier transfers live accounting rather than
    /// re-counting), so only the segment's own gauges and run-time
    /// frees appear here.
    pub fn snapshot(&self) -> Stats {
        let live_blocks = self.live_blocks.load(Ordering::Acquire);
        let live_words = self.live_words.load(Ordering::Acquire);
        Stats {
            frees: self.frees.load(Ordering::Acquire),
            live_blocks,
            live_words,
            // The segment's high-water mark is its build-time size: it
            // only shrinks after the freeze.
            peak_live_blocks: self.installs,
            peak_live_words: self.install_words,
            ..Stats::default()
        }
    }
}
