//! Runtime statistics: the quantities behind every figure of the paper's
//! evaluation (execution cost drivers and the peak-working-set analog).

use std::fmt;

/// Counters collected by the heap and machine during a run.
///
/// All counters are exact (no sampling). `peak_live_words` is the
/// reproduction's analog of Fig. 9's peak working set: for the
/// reference-counting modes it is the true live heap; for the tracing-GC
/// mode it includes not-yet-swept garbage (as a real GC's RSS does); for
/// the arena mode it only ever grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Fresh block allocations (not served by a reuse token).
    pub allocations: u64,
    /// Words allocated fresh (fields + header).
    pub alloc_words: u64,
    /// Allocations served in-place from a reuse token (§2.4).
    pub reuses: u64,
    /// Blocks freed (by rc reaching zero, explicit `free`, token release,
    /// or GC sweep).
    pub frees: u64,
    /// Executed `dup` operations that touched a counted block.
    pub dups: u64,
    /// Executed `drop` operations that touched a counted block.
    pub drops: u64,
    /// Executed `decref` fast decrements.
    pub decrefs: u64,
    /// `is-unique` tests executed.
    pub unique_tests: u64,
    /// `is-unique` tests that took the unique fast path.
    pub unique_hits: u64,
    /// RC operations that took the atomic (thread-shared) slow path.
    pub atomic_ops: u64,
    /// Field writes performed when constructing.
    pub field_writes: u64,
    /// Field writes skipped by reuse specialization (§2.5).
    pub skipped_writes: u64,
    /// Reuse tokens released unused (memory freed by `drop-token`).
    pub token_frees: u64,
    /// Blocks marked thread-shared by `tshare` (§2.7.2).
    pub shared_marks: u64,
    /// Allocations served from a size-class free list (storage recycled
    /// without touching the global allocator).
    pub freelist_hits: u64,
    /// Allocations that found their size class empty and fell back to
    /// the global allocator (or table growth).
    pub freelist_misses: u64,
    /// Words served from the free lists (fields + header, summed over
    /// every hit).
    pub recycled_words: u64,
    /// Garbage collections run (tracing-GC mode only).
    pub gc_collections: u64,
    /// Blocks traced live across all collections.
    pub gc_marked: u64,
    /// Blocks reclaimed by sweeps.
    pub gc_swept: u64,
    /// Currently live blocks.
    pub live_blocks: u64,
    /// Currently live words.
    pub live_words: u64,
    /// High-water mark of `live_blocks`.
    pub peak_live_blocks: u64,
    /// High-water mark of `live_words` — the Fig. 9 "rss" analog.
    pub peak_live_words: u64,
    /// Abstract machine steps executed.
    pub steps: u64,
}

impl Stats {
    /// Total reference-count operations executed (the quantity §2 says
    /// Perceus optimizes: "the cost of reference counting is linear in
    /// the number of reference counting operations").
    pub fn rc_ops(&self) -> u64 {
        self.dups + self.drops + self.decrefs + self.unique_tests
    }

    /// Total allocations by either path.
    pub fn total_allocations(&self) -> u64 {
        self.allocations + self.reuses
    }

    /// Fraction of constructions served by in-place reuse.
    pub fn reuse_rate(&self) -> f64 {
        let t = self.total_allocations();
        if t == 0 {
            0.0
        } else {
            self.reuses as f64 / t as f64
        }
    }

    /// Fraction of fresh allocations served from the size-class free
    /// lists (reuse-token constructions are not counted: they never
    /// consult the allocator at all).
    pub fn freelist_hit_rate(&self) -> f64 {
        let t = self.freelist_hits + self.freelist_misses;
        if t == 0 {
            0.0
        } else {
            self.freelist_hits as f64 / t as f64
        }
    }

    fn record_alloc(&mut self, words: u64) {
        self.live_blocks += 1;
        self.live_words += words;
        self.peak_live_blocks = self.peak_live_blocks.max(self.live_blocks);
        self.peak_live_words = self.peak_live_words.max(self.live_words);
    }

    pub(crate) fn on_fresh_alloc(&mut self, words: u64) {
        self.allocations += 1;
        self.alloc_words += words;
        self.record_alloc(words);
    }

    pub(crate) fn on_reuse(&mut self) {
        self.reuses += 1;
        // live accounting unchanged: the cell never stopped being held.
    }

    pub(crate) fn on_free(&mut self, words: u64) {
        self.frees += 1;
        self.live_blocks -= 1;
        self.live_words -= words;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "alloc {} (+{} reused, {:.1}% reuse) free {}  peak {} blocks / {} words",
            self.allocations,
            self.reuses,
            self.reuse_rate() * 100.0,
            self.frees,
            self.peak_live_blocks,
            self.peak_live_words
        )?;
        writeln!(
            f,
            "rc ops: {} dup, {} drop, {} decref, {} is-unique ({} unique), {} atomic",
            self.dups,
            self.drops,
            self.decrefs,
            self.unique_tests,
            self.unique_hits,
            self.atomic_ops
        )?;
        writeln!(
            f,
            "freelist: {} hits / {} misses ({:.1}% hit), {} words recycled",
            self.freelist_hits,
            self.freelist_misses,
            self.freelist_hit_rate() * 100.0,
            self.recycled_words
        )?;
        write!(
            f,
            "writes: {} fields ({} skipped); gc: {} collections; steps: {}",
            self.field_writes, self.skipped_writes, self.gc_collections, self.steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracking() {
        let mut s = Stats::default();
        s.on_fresh_alloc(3);
        s.on_fresh_alloc(3);
        s.on_free(3);
        s.on_fresh_alloc(3);
        assert_eq!(s.live_blocks, 2);
        assert_eq!(s.peak_live_blocks, 2);
        assert_eq!(s.peak_live_words, 6);
        assert_eq!(s.allocations, 3);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn reuse_rate() {
        let mut s = Stats::default();
        s.on_fresh_alloc(2);
        s.on_reuse();
        assert!((s.reuse_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.total_allocations(), 2);
    }

    #[test]
    fn freelist_hit_rate() {
        let mut s = Stats::default();
        assert_eq!(s.freelist_hit_rate(), 0.0);
        s.freelist_hits = 3;
        s.freelist_misses = 1;
        assert!((s.freelist_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn rc_ops_sum() {
        let s = Stats {
            dups: 2,
            drops: 3,
            decrefs: 4,
            unique_tests: 5,
            ..Stats::default()
        };
        assert_eq!(s.rc_ops(), 14);
    }
}
