//! Runtime statistics: the quantities behind every figure of the paper's
//! evaluation (execution cost drivers and the peak-working-set analog).

use std::fmt;

/// Counters collected by the heap and machine during a run.
///
/// All counters are exact (no sampling). `peak_live_words` is the
/// reproduction's analog of Fig. 9's peak working set: for the
/// reference-counting modes it is the true live heap; for the tracing-GC
/// mode it includes not-yet-swept garbage (as a real GC's RSS does); for
/// the arena mode it only ever grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Fresh block allocations (not served by a reuse token).
    pub allocations: u64,
    /// Words allocated fresh (fields + header).
    pub alloc_words: u64,
    /// Allocations served in-place from a reuse token (§2.4).
    pub reuses: u64,
    /// Blocks freed (by rc reaching zero, explicit `free`, token release,
    /// or GC sweep).
    pub frees: u64,
    /// Executed `dup` operations that touched a counted block.
    pub dups: u64,
    /// Executed `drop` operations that touched a counted block.
    pub drops: u64,
    /// Executed `decref` fast decrements.
    pub decrefs: u64,
    /// `is-unique` tests executed.
    pub unique_tests: u64,
    /// `is-unique` tests that took the unique fast path.
    pub unique_hits: u64,
    /// RC operations that executed a **real atomic RMW** on a
    /// shared-segment header. Exactly zero in single-threaded runs: the
    /// thread-local fast path never issues an atomic instruction, and
    /// pinned (sticky) headers are left untouched without an RMW.
    pub atomic_ops: u64,
    /// RC operations that took the negative-header slow path on a
    /// *thread-local* block (the in-thread `tshare` discipline). No
    /// atomic instruction runs — the block never left this thread.
    pub local_shared_ops: u64,
    /// Field writes performed when constructing.
    pub field_writes: u64,
    /// Field writes skipped by reuse specialization (§2.5).
    pub skipped_writes: u64,
    /// Reuse tokens released unused (memory freed by `drop-token`).
    pub token_frees: u64,
    /// Blocks marked thread-shared by `tshare` (§2.7.2).
    pub shared_marks: u64,
    /// Allocations served from a size-class free list (storage recycled
    /// without touching the global allocator).
    pub freelist_hits: u64,
    /// Allocations that found their size class empty and fell back to
    /// the global allocator (or table growth).
    pub freelist_misses: u64,
    /// Words served from the free lists (fields + header, summed over
    /// every hit).
    pub recycled_words: u64,
    /// Garbage collections run (tracing-GC mode only).
    pub gc_collections: u64,
    /// Blocks traced live across all collections.
    pub gc_marked: u64,
    /// Blocks reclaimed by sweeps.
    pub gc_swept: u64,
    /// Currently live blocks.
    pub live_blocks: u64,
    /// Currently live words.
    pub live_words: u64,
    /// High-water mark of `live_blocks`.
    pub peak_live_blocks: u64,
    /// High-water mark of `live_words` — the Fig. 9 "rss" analog.
    pub peak_live_words: u64,
    /// Abstract machine steps executed.
    pub steps: u64,
}

/// The *RC schedule*: the deterministic counters that pin a workload's
/// exact dup/drop/alloc/reuse behaviour, in canonical order. These are
/// the quantities gated with zero tolerance by `BENCH_BASELINE.json`
/// and by the machine-vs-native differential check — two executors that
/// agree on all of them (plus the result value) executed the *same*
/// reference-counting schedule, not merely equivalent programs. The
/// volatile quantities (wall time, thread interleavings, `atomic_ops`)
/// are deliberately excluded.
pub const SCHEDULE_KEYS: [&str; 18] = [
    "allocations",
    "alloc_words",
    "reuses",
    "frees",
    "dups",
    "drops",
    "decrefs",
    "unique_tests",
    "unique_hits",
    "freelist_hits",
    "freelist_misses",
    "recycled_words",
    "field_writes",
    "skipped_writes",
    "token_frees",
    "peak_live_blocks",
    "peak_live_words",
    "steps",
];

impl Stats {
    /// Total reference-count operations executed (the quantity §2 says
    /// Perceus optimizes: "the cost of reference counting is linear in
    /// the number of reference counting operations").
    pub fn rc_ops(&self) -> u64 {
        self.dups + self.drops + self.decrefs + self.unique_tests
    }

    /// The schedule counters in [`SCHEDULE_KEYS`] order.
    pub fn schedule_values(&self) -> [u64; 18] {
        [
            self.allocations,
            self.alloc_words,
            self.reuses,
            self.frees,
            self.dups,
            self.drops,
            self.decrefs,
            self.unique_tests,
            self.unique_hits,
            self.freelist_hits,
            self.freelist_misses,
            self.recycled_words,
            self.field_writes,
            self.skipped_writes,
            self.token_frees,
            self.peak_live_blocks,
            self.peak_live_words,
            self.steps,
        ]
    }

    /// Total allocations by either path.
    pub fn total_allocations(&self) -> u64 {
        self.allocations + self.reuses
    }

    /// Fraction of constructions served by in-place reuse.
    pub fn reuse_rate(&self) -> f64 {
        let t = self.total_allocations();
        if t == 0 {
            0.0
        } else {
            self.reuses as f64 / t as f64
        }
    }

    /// Fraction of fresh allocations served from the size-class free
    /// lists (reuse-token constructions are not counted: they never
    /// consult the allocator at all).
    pub fn freelist_hit_rate(&self) -> f64 {
        let t = self.freelist_hits + self.freelist_misses;
        if t == 0 {
            0.0
        } else {
            self.freelist_hits as f64 / t as f64
        }
    }

    fn record_alloc(&mut self, words: u64) {
        self.live_blocks += 1;
        self.live_words += words;
        self.peak_live_blocks = self.peak_live_blocks.max(self.live_blocks);
        self.peak_live_words = self.peak_live_words.max(self.live_words);
    }

    pub(crate) fn on_fresh_alloc(&mut self, words: u64) {
        self.allocations += 1;
        self.alloc_words += words;
        self.record_alloc(words);
    }

    pub(crate) fn on_reuse(&mut self) {
        self.reuses += 1;
        // live accounting unchanged: the cell never stopped being held.
    }

    pub(crate) fn on_free(&mut self, words: u64) {
        self.frees += 1;
        self.live_blocks -= 1;
        self.live_words -= words;
    }

    /// Merges the stats of two *disjoint* actors (worker threads over
    /// disjoint local heaps, or a thread and the shared segment's
    /// snapshot): cumulative counters and current live gauges add;
    /// peaks take the max (the concurrent high-water mark is bounded by
    /// the max observed by any one actor — summing peaks reached at
    /// different times would double-count).
    ///
    /// The operation is associative and commutative with `Stats::default()`
    /// as identity, so any fold order over a thread pool merges to the
    /// same report.
    #[must_use]
    pub fn merge(&self, other: &Stats) -> Stats {
        Stats {
            allocations: self.allocations + other.allocations,
            alloc_words: self.alloc_words + other.alloc_words,
            reuses: self.reuses + other.reuses,
            frees: self.frees + other.frees,
            dups: self.dups + other.dups,
            drops: self.drops + other.drops,
            decrefs: self.decrefs + other.decrefs,
            unique_tests: self.unique_tests + other.unique_tests,
            unique_hits: self.unique_hits + other.unique_hits,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            local_shared_ops: self.local_shared_ops + other.local_shared_ops,
            field_writes: self.field_writes + other.field_writes,
            skipped_writes: self.skipped_writes + other.skipped_writes,
            token_frees: self.token_frees + other.token_frees,
            shared_marks: self.shared_marks + other.shared_marks,
            freelist_hits: self.freelist_hits + other.freelist_hits,
            freelist_misses: self.freelist_misses + other.freelist_misses,
            recycled_words: self.recycled_words + other.recycled_words,
            gc_collections: self.gc_collections + other.gc_collections,
            gc_marked: self.gc_marked + other.gc_marked,
            gc_swept: self.gc_swept + other.gc_swept,
            live_blocks: self.live_blocks + other.live_blocks,
            live_words: self.live_words + other.live_words,
            peak_live_blocks: self.peak_live_blocks.max(other.peak_live_blocks),
            peak_live_words: self.peak_live_words.max(other.peak_live_words),
            steps: self.steps + other.steps,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "alloc {} (+{} reused, {:.1}% reuse) free {}  peak {} blocks / {} words",
            self.allocations,
            self.reuses,
            self.reuse_rate() * 100.0,
            self.frees,
            self.peak_live_blocks,
            self.peak_live_words
        )?;
        writeln!(
            f,
            "rc ops: {} dup, {} drop, {} decref, {} is-unique ({} unique), \
             {} atomic, {} local-shared",
            self.dups,
            self.drops,
            self.decrefs,
            self.unique_tests,
            self.unique_hits,
            self.atomic_ops,
            self.local_shared_ops
        )?;
        writeln!(
            f,
            "freelist: {} hits / {} misses ({:.1}% hit), {} words recycled",
            self.freelist_hits,
            self.freelist_misses,
            self.freelist_hit_rate() * 100.0,
            self.recycled_words
        )?;
        write!(
            f,
            "writes: {} fields ({} skipped); gc: {} collections; steps: {}",
            self.field_writes, self.skipped_writes, self.gc_collections, self.steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracking() {
        let mut s = Stats::default();
        s.on_fresh_alloc(3);
        s.on_fresh_alloc(3);
        s.on_free(3);
        s.on_fresh_alloc(3);
        assert_eq!(s.live_blocks, 2);
        assert_eq!(s.peak_live_blocks, 2);
        assert_eq!(s.peak_live_words, 6);
        assert_eq!(s.allocations, 3);
        assert_eq!(s.frees, 1);
    }

    #[test]
    fn reuse_rate() {
        let mut s = Stats::default();
        s.on_fresh_alloc(2);
        s.on_reuse();
        assert!((s.reuse_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.total_allocations(), 2);
    }

    #[test]
    fn freelist_hit_rate() {
        let mut s = Stats::default();
        assert_eq!(s.freelist_hit_rate(), 0.0);
        s.freelist_hits = 3;
        s.freelist_misses = 1;
        assert!((s.freelist_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_is_associative_with_max_peaks() {
        let a = Stats {
            dups: 10,
            atomic_ops: 3,
            live_blocks: 2,
            live_words: 8,
            peak_live_blocks: 5,
            peak_live_words: 40,
            ..Stats::default()
        };
        let b = Stats {
            dups: 7,
            frees: 4,
            peak_live_blocks: 9,
            peak_live_words: 20,
            ..Stats::default()
        };
        let c = Stats {
            drops: 1,
            peak_live_blocks: 6,
            peak_live_words: 60,
            ..Stats::default()
        };
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "merge is associative");
        assert_eq!(left, c.merge(&b).merge(&a), "and commutative");
        assert_eq!(left.dups, 17);
        assert_eq!(left.peak_live_blocks, 9, "peaks take the max");
        assert_eq!(left.peak_live_words, 60);
        assert_eq!(left.live_blocks, 2, "live gauges add");
        let id = Stats::default();
        assert_eq!(a.merge(&id), a, "default is the identity");
    }

    #[test]
    fn rc_ops_sum() {
        let s = Stats {
            dups: 2,
            drops: 3,
            decrefs: 4,
            unique_tests: 5,
            ..Stats::default()
        };
        assert_eq!(s.rc_ops(), 14);
    }
}
