//! Runtime errors.

use crate::value::Addr;
use std::fmt;

/// An error raised while executing a compiled program.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm,
/// so adding an error variant is not a breaking change. Every variant
/// has a stable machine-readable code ([`RuntimeError::code`]) that
/// wire protocols report verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// `abort(...)` was executed (non-exhaustive match, etc.).
    Abort(String),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// An address referenced a freed (or re-tenanted) cell. With the
    /// generation-checked heap this is how any unsoundness in generated
    /// reference counting surfaces — deterministically.
    UseAfterFree(Addr),
    /// An address was out of range entirely.
    BadAddress(Addr),
    /// The configured step budget was exhausted.
    StepLimit(u64),
    /// The configured live-memory budget was exceeded: the session's
    /// live heap grew past `limit_words` (it reached `live_words`).
    /// Because the heap is garbage-free (Thm. 2), the live words at any
    /// step are exactly the program's reachable data — so this limit is
    /// a *deterministic* sandbox, not an allocator-dependent OOM.
    MemoryLimit { limit_words: u64, live_words: u64 },
    /// A value had the wrong shape for the operation (a compiler bug or
    /// an ill-typed hand-built program).
    TypeMismatch(String),
    /// A pattern match fell through every arm with no default.
    MatchFailure(String),
    /// An internal invariant of the heap or machine was violated.
    Internal(String),
}

impl RuntimeError {
    /// The stable machine-readable code for this error, one per
    /// variant. These strings are a wire-protocol contract (see
    /// docs/SERVING.md): they never change for an existing variant, and
    /// a new variant must introduce a new code.
    pub fn code(&self) -> &'static str {
        match self {
            RuntimeError::Abort(_) => "abort",
            RuntimeError::DivisionByZero => "division-by-zero",
            RuntimeError::UseAfterFree(_) => "use-after-free",
            RuntimeError::BadAddress(_) => "bad-address",
            RuntimeError::StepLimit(_) => "step-limit",
            RuntimeError::MemoryLimit { .. } => "memory-limit",
            RuntimeError::TypeMismatch(_) => "type-mismatch",
            RuntimeError::MatchFailure(_) => "match-failure",
            RuntimeError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Abort(m) => write!(f, "abort: {m}"),
            RuntimeError::DivisionByZero => f.write_str("division by zero"),
            RuntimeError::UseAfterFree(a) => write!(f, "use after free at {a}"),
            RuntimeError::BadAddress(a) => write!(f, "bad address {a}"),
            RuntimeError::StepLimit(n) => write!(f, "step limit of {n} exhausted"),
            RuntimeError::MemoryLimit {
                limit_words,
                live_words,
            } => write!(
                f,
                "memory limit of {limit_words} words exceeded ({live_words} live)"
            ),
            RuntimeError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            RuntimeError::MatchFailure(m) => write!(f, "match failure: {m}"),
            RuntimeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}
