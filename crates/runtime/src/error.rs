//! Runtime errors.

use crate::value::Addr;
use std::fmt;

/// An error raised while executing a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// `abort(...)` was executed (non-exhaustive match, etc.).
    Abort(String),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// An address referenced a freed (or re-tenanted) cell. With the
    /// generation-checked heap this is how any unsoundness in generated
    /// reference counting surfaces — deterministically.
    UseAfterFree(Addr),
    /// An address was out of range entirely.
    BadAddress(Addr),
    /// The configured step budget was exhausted.
    StepLimit(u64),
    /// The configured live-memory budget was exceeded: the session's
    /// live heap grew past `limit_words` (it reached `live_words`).
    /// Because the heap is garbage-free (Thm. 2), the live words at any
    /// step are exactly the program's reachable data — so this limit is
    /// a *deterministic* sandbox, not an allocator-dependent OOM.
    MemoryLimit { limit_words: u64, live_words: u64 },
    /// A value had the wrong shape for the operation (a compiler bug or
    /// an ill-typed hand-built program).
    TypeMismatch(String),
    /// A pattern match fell through every arm with no default.
    MatchFailure(String),
    /// An internal invariant of the heap or machine was violated.
    Internal(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Abort(m) => write!(f, "abort: {m}"),
            RuntimeError::DivisionByZero => f.write_str("division by zero"),
            RuntimeError::UseAfterFree(a) => write!(f, "use after free at {a}"),
            RuntimeError::BadAddress(a) => write!(f, "bad address {a}"),
            RuntimeError::StepLimit(n) => write!(f, "step limit of {n} exhausted"),
            RuntimeError::MemoryLimit {
                limit_words,
                live_words,
            } => write!(
                f,
                "memory limit of {limit_words} words exceeded ({live_words} live)"
            ),
            RuntimeError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            RuntimeError::MatchFailure(m) => write!(f, "match failure: {m}"),
            RuntimeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}
