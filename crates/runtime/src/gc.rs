//! A mark–sweep tracing collector — the stand-in for the generational
//! tracing collectors of OCaml, GHC and the JVM in the Fig. 9 comparison
//! (see DESIGN.md for the substitution rationale).
//!
//! The collector is precise: the machine enumerates its roots (current
//! environment plus every saved call-frame environment) and the
//! collector traces the object graph from them. Collections trigger when
//! the live block count exceeds a threshold that grows geometrically
//! with the surviving heap — the classic growth-ratio policy, which is
//! what gives tracing collectors their characteristic memory headroom
//! over precise reference counting (the paper's Fig. 9 memory plot).

use crate::heap::Heap;
use crate::value::Value;

/// Collector policy.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Initial collection threshold, in live blocks.
    pub initial_threshold: u64,
    /// After a collection, the next threshold is
    /// `survivors * growth_factor` (at least `initial_threshold`).
    pub growth_factor: f64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            initial_threshold: 1 << 12,
            growth_factor: 2.0,
        }
    }
}

/// Mark–sweep collector state.
#[derive(Debug, Clone)]
pub struct Collector {
    config: GcConfig,
    threshold: u64,
}

impl Collector {
    /// Creates a collector with the given policy.
    pub fn new(config: GcConfig) -> Self {
        Collector {
            threshold: config.initial_threshold,
            config,
        }
    }

    /// Should the machine collect before the next allocation?
    pub fn should_collect(&self, heap: &Heap) -> bool {
        heap.live_blocks() >= self.threshold
    }

    /// Runs a full mark–sweep collection from the given roots.
    /// Returns the number of blocks reclaimed.
    pub fn collect<'a>(&mut self, heap: &mut Heap, roots: impl Iterator<Item = &'a Value>) -> u64 {
        heap.clear_marks();
        // Mark.
        let mut work: Vec<_> = roots.filter_map(|v| v.addr()).collect();
        // A reuse token holds memory too (not applicable in GC mode, but
        // harmless to handle uniformly).
        let mut marked = 0u64;
        while let Some(addr) = work.pop() {
            let Ok(block) = heap.block_mut(addr) else {
                // Stale root (dead slot) or a shared-segment address:
                // neither is local garbage. The shared segment is
                // reference-counted even for GC-mode workers and is
                // audited at thread join instead.
                continue;
            };
            if block.mark {
                continue;
            }
            block.mark = true;
            marked += 1;
            for f in block.fields.clone().iter() {
                if let Value::Ref(child) = f {
                    work.push(*child);
                }
            }
        }
        heap.stats.gc_collections += 1;
        heap.stats.gc_marked += marked;
        // Sweep.
        let swept = heap.sweep();
        // Next threshold grows with the surviving heap.
        self.threshold = ((heap.live_blocks() as f64 * self.config.growth_factor) as u64)
            .max(self.config.initial_threshold);
        swept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{BlockTag, ReclaimMode};
    use perceus_core::ir::CtorId;

    fn cell(h: &mut Heap, fields: Vec<Value>) -> Value {
        Value::Ref(h.alloc(BlockTag::Ctor(CtorId(0)), fields.into_boxed_slice()))
    }

    #[test]
    fn collects_unreachable_keeps_reachable() {
        let mut h = Heap::new(ReclaimMode::Gc);
        let keep_inner = cell(&mut h, vec![Value::Int(1)]);
        let keep = cell(&mut h, vec![keep_inner]);
        let _garbage = cell(&mut h, vec![Value::Int(2)]);
        let _garbage2 = cell(&mut h, vec![Value::Int(3)]);
        let mut gc = Collector::new(GcConfig::default());
        let roots = [keep];
        let swept = gc.collect(&mut h, roots.iter());
        assert_eq!(swept, 2);
        assert_eq!(h.live_blocks(), 2);
        assert!(h.block(keep.addr().unwrap()).is_ok());
    }

    #[test]
    fn collects_cycles() {
        // Unlike reference counting, the tracing collector reclaims
        // cycles (the §2.7.4 limitation in reverse).
        let mut h = Heap::new(ReclaimMode::Gc);
        let a = cell(&mut h, vec![Value::Unit]);
        let b = cell(&mut h, vec![a]);
        h.block_mut(a.addr().unwrap()).unwrap().fields[0] = b;
        let mut gc = Collector::new(GcConfig::default());
        let swept = gc.collect(&mut h, std::iter::empty());
        assert_eq!(swept, 2);
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn threshold_grows_with_survivors() {
        let mut h = Heap::new(ReclaimMode::Gc);
        let mut roots = Vec::new();
        for i in 0..100 {
            roots.push(cell(&mut h, vec![Value::Int(i)]));
        }
        let mut gc = Collector::new(GcConfig {
            initial_threshold: 10,
            growth_factor: 2.0,
        });
        assert!(gc.should_collect(&h));
        gc.collect(&mut h, roots.iter());
        assert_eq!(h.live_blocks(), 100);
        // 100 survivors * 2.0 = 200.
        assert!(!gc.should_collect(&h));
    }
}
