//! The standard (reference-count-free) semantics of Fig. 6 — used as the
//! differential-testing oracle for Theorem 1: a program evaluated under
//! the reference-counted machine must produce the same value and output
//! as its erasure evaluated here.
//!
//! This is a deliberately *independent* implementation: a direct
//! big-step environment interpreter over the core IR, sharing no code
//! with the backend compiler or abstract machine, so a bug in either is
//! very unlikely to be mirrored in the other.

use crate::machine::DeepValue;
use perceus_core::ir::expr::{Expr, Lambda, Lit, PrimOp};
use perceus_core::ir::{CtorId, FunId, Program, TypeTable, Var};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Oracle values (immutable trees plus closures and mutable refs).
#[derive(Clone)]
pub enum SValue {
    Unit,
    Int(i64),
    Ctor(CtorId, Rc<Vec<SValue>>),
    Closure(Rc<SClosure>),
    Global(FunId),
    MutRef(Rc<RefCell<SValue>>),
}

/// An oracle closure.
pub struct SClosure {
    params: Vec<Var>,
    env: Vec<(Var, SValue)>,
    body: Expr,
}

impl fmt::Debug for SValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SValue::Unit => f.write_str("()"),
            SValue::Int(i) => write!(f, "{i}"),
            SValue::Ctor(c, fields) => write!(f, "#{}{:?}", c.0, fields),
            SValue::Closure(_) | SValue::Global(_) => f.write_str("<fun>"),
            SValue::MutRef(v) => write!(f, "ref({:?})", v.borrow()),
        }
    }
}

/// Errors from the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// `abort(...)`.
    Abort(String),
    /// Division by zero.
    DivisionByZero,
    /// The fuel budget ran out (guards non-termination in random tests).
    OutOfFuel,
    /// Native recursion depth guard.
    TooDeep,
    /// Ill-typed or ill-formed program.
    Stuck(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Abort(m) => write!(f, "abort: {m}"),
            OracleError::DivisionByZero => f.write_str("division by zero"),
            OracleError::OutOfFuel => f.write_str("out of fuel"),
            OracleError::TooDeep => f.write_str("recursion too deep for the oracle"),
            OracleError::Stuck(m) => write!(f, "stuck: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// The oracle evaluator.
pub struct Oracle<'p> {
    program: &'p Program,
    fuel: u64,
    depth: usize,
    max_depth: usize,
    /// Output of `println`, for comparison with the machine's.
    pub output: Vec<i64>,
}

impl<'p> Oracle<'p> {
    /// Creates an oracle with the given fuel budget.
    pub fn new(program: &'p Program, fuel: u64) -> Self {
        Oracle {
            program,
            fuel,
            depth: 0,
            max_depth: 400,
            output: Vec::new(),
        }
    }

    /// Raises the call-depth guard (the oracle is natively recursive;
    /// callers that need deep recursion should run it on a thread with a
    /// large stack).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Evaluates a top-level function applied to arguments.
    pub fn run_fun(&mut self, fun: FunId, args: Vec<SValue>) -> Result<SValue, OracleError> {
        let def = self.program.fun(fun);
        if def.params.len() != args.len() {
            return Err(OracleError::Stuck(format!("{} arity mismatch", def.name)));
        }
        let mut env: Vec<(Var, SValue)> = def.params.iter().cloned().zip(args).collect();
        self.eval(&def.body, &mut env)
    }

    /// Evaluates the entry point.
    pub fn run_entry(&mut self, args: Vec<SValue>) -> Result<SValue, OracleError> {
        let entry = self
            .program
            .entry
            .ok_or_else(|| OracleError::Stuck("no entry point".into()))?;
        self.run_fun(entry, args)
    }

    fn eval(&mut self, e: &Expr, env: &mut Vec<(Var, SValue)>) -> Result<SValue, OracleError> {
        if self.fuel == 0 {
            return Err(OracleError::OutOfFuel);
        }
        self.fuel -= 1;
        match e {
            Expr::Var(v) => lookup(env, v),
            Expr::Lit(Lit::Int(i)) => Ok(SValue::Int(*i)),
            Expr::Lit(Lit::Unit) => Ok(SValue::Unit),
            Expr::Global(f) => Ok(SValue::Global(*f)),
            Expr::Abort(m) => Err(OracleError::Abort(m.clone())),
            Expr::App(f, args) => {
                let fv = self.eval(f, env)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.apply(fv, vals)
            }
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.guarded(|o| o.run_fun(*f, vals))
            }
            Expr::Prim(op, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.prim(*op, vals)
            }
            Expr::Lam(Lambda {
                params,
                captures,
                body,
            }) => {
                let captured: Vec<(Var, SValue)> = captures
                    .iter()
                    .map(|c| Ok((c.clone(), lookup(env, c)?)))
                    .collect::<Result<_, OracleError>>()?;
                Ok(SValue::Closure(Rc::new(SClosure {
                    params: params.clone(),
                    env: captured,
                    body: (**body).clone(),
                })))
            }
            Expr::Con { ctor, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                Ok(SValue::Ctor(*ctor, Rc::new(vals)))
            }
            Expr::Let { var, rhs, body } => {
                let v = self.eval(rhs, env)?;
                env.push((var.clone(), v));
                let out = self.eval(body, env);
                env.pop();
                out
            }
            Expr::Seq(a, b) => {
                self.eval(a, env)?;
                self.eval(b, env)
            }
            Expr::Match {
                scrutinee,
                arms,
                default,
            } => {
                let v = lookup(env, scrutinee)?;
                let (ctor, fields) = match &v {
                    SValue::Ctor(c, fs) => (*c, fs.clone()),
                    other => {
                        return Err(OracleError::Stuck(format!(
                            "match on non-constructor {other:?}"
                        )))
                    }
                };
                for arm in arms {
                    if arm.ctor == ctor {
                        let before = env.len();
                        for (b, f) in arm.binders.iter().zip(fields.iter()) {
                            if let Some(b) = b {
                                env.push((b.clone(), f.clone()));
                            }
                        }
                        let out = self.eval(&arm.body, env);
                        env.truncate(before);
                        return out;
                    }
                }
                match default {
                    Some(d) => self.eval(d, env),
                    None => Err(OracleError::Stuck(format!(
                        "match fell through on constructor #{}",
                        ctor.0
                    ))),
                }
            }
            // The oracle evaluates erased programs only: reference-count
            // instructions are a hard error, keeping the oracle honest.
            Expr::Dup(..)
            | Expr::Drop(..)
            | Expr::DropReuse { .. }
            | Expr::Free(..)
            | Expr::DecRef(..)
            | Expr::DropToken(..)
            | Expr::IsUnique { .. }
            | Expr::TokenOf(_)
            | Expr::NullToken => Err(OracleError::Stuck(
                "reference-count instruction in oracle input (erase first)".into(),
            )),
        }
    }

    fn apply(&mut self, f: SValue, args: Vec<SValue>) -> Result<SValue, OracleError> {
        match f {
            SValue::Global(id) => self.guarded(|o| o.run_fun(id, args)),
            SValue::Closure(c) => {
                if c.params.len() != args.len() {
                    return Err(OracleError::Stuck("closure arity mismatch".into()));
                }
                let mut env = c.env.clone();
                env.extend(c.params.iter().cloned().zip(args));
                self.guarded(|o| o.eval(&c.body, &mut env))
            }
            other => Err(OracleError::Stuck(format!(
                "application of non-function {other:?}"
            ))),
        }
    }

    fn guarded<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, OracleError>,
    ) -> Result<T, OracleError> {
        if self.depth >= self.max_depth {
            return Err(OracleError::TooDeep);
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn prim(&mut self, op: PrimOp, vals: Vec<SValue>) -> Result<SValue, OracleError> {
        use PrimOp::*;
        let int = |v: &SValue| match v {
            SValue::Int(i) => Ok(*i),
            other => Err(OracleError::Stuck(format!("expected int, got {other:?}"))),
        };
        let boolean = |b: bool| {
            SValue::Ctor(
                if b { TypeTable::TRUE } else { TypeTable::FALSE },
                Rc::new(Vec::new()),
            )
        };
        Ok(match op {
            Add => SValue::Int(int(&vals[0])?.wrapping_add(int(&vals[1])?)),
            Sub => SValue::Int(int(&vals[0])?.wrapping_sub(int(&vals[1])?)),
            Mul => SValue::Int(int(&vals[0])?.wrapping_mul(int(&vals[1])?)),
            Div => {
                let d = int(&vals[1])?;
                if d == 0 {
                    return Err(OracleError::DivisionByZero);
                }
                SValue::Int(int(&vals[0])?.wrapping_div(d))
            }
            Rem => {
                let d = int(&vals[1])?;
                if d == 0 {
                    return Err(OracleError::DivisionByZero);
                }
                SValue::Int(int(&vals[0])?.wrapping_rem(d))
            }
            Neg => SValue::Int(int(&vals[0])?.wrapping_neg()),
            Lt => boolean(int(&vals[0])? < int(&vals[1])?),
            Le => boolean(int(&vals[0])? <= int(&vals[1])?),
            Gt => boolean(int(&vals[0])? > int(&vals[1])?),
            Ge => boolean(int(&vals[0])? >= int(&vals[1])?),
            Eq | Ne => {
                let eq = match (&vals[0], &vals[1]) {
                    (SValue::Int(a), SValue::Int(b)) => a == b,
                    (SValue::Ctor(a, fa), SValue::Ctor(b, fb))
                        if fa.is_empty() && fb.is_empty() =>
                    {
                        a == b
                    }
                    (SValue::Unit, SValue::Unit) => true,
                    (a, b) => return Err(OracleError::Stuck(format!("== on {a:?} and {b:?}"))),
                };
                boolean(if op == Eq { eq } else { !eq })
            }
            Min => SValue::Int(int(&vals[0])?.min(int(&vals[1])?)),
            Max => SValue::Int(int(&vals[0])?.max(int(&vals[1])?)),
            RefNew => SValue::MutRef(Rc::new(RefCell::new(vals[0].clone()))),
            RefGet => match &vals[0] {
                SValue::MutRef(r) => r.borrow().clone(),
                other => return Err(OracleError::Stuck(format!("deref of {other:?}"))),
            },
            RefSet => match &vals[0] {
                SValue::MutRef(r) => {
                    *r.borrow_mut() = vals[1].clone();
                    SValue::Unit
                }
                other => return Err(OracleError::Stuck(format!(":= on {other:?}"))),
            },
            TShare => SValue::Unit,
            Println => {
                let n = match &vals[0] {
                    SValue::Int(i) => *i,
                    SValue::Unit => 0,
                    other => return Err(OracleError::Stuck(format!("println of {other:?}"))),
                };
                self.output.push(n);
                SValue::Unit
            }
        })
    }
}

fn lookup(env: &[(Var, SValue)], v: &Var) -> Result<SValue, OracleError> {
    env.iter()
        .rev()
        .find(|(k, _)| k == v)
        .map(|(_, val)| val.clone())
        .ok_or_else(|| OracleError::Stuck(format!("unbound variable {v:?}")))
}

/// Converts an oracle value to the machine-comparable deep form.
pub fn to_deep(v: &SValue, types: &TypeTable) -> DeepValue {
    match v {
        SValue::Unit => DeepValue::Unit,
        SValue::Int(i) => DeepValue::Int(*i),
        SValue::Ctor(c, fields) => DeepValue::Ctor(
            types.ctor(*c).name.to_string(),
            fields.iter().map(|f| to_deep(f, types)).collect(),
        ),
        SValue::Closure(_) | SValue::Global(_) => DeepValue::Closure,
        SValue::MutRef(r) => DeepValue::MutRef(Box::new(to_deep(&r.borrow(), types))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perceus_core::ir::builder::{ite, ProgramBuilder};
    use perceus_core::ir::Expr;

    #[test]
    fn evaluates_recursion() {
        // fun fact(n) { if n <= 1 then 1 else n * fact(n - 1) }
        let mut pb = ProgramBuilder::new();
        let n = pb.fresh("n");
        let c = pb.fresh("c");
        let f = pb.declare("fact", vec![n.clone()]);
        let body = Expr::let_(
            c.clone(),
            Expr::Prim(PrimOp::Le, vec![Expr::Var(n.clone()), Expr::int(1)]),
            ite(
                c.clone(),
                Expr::int(1),
                Expr::Prim(
                    PrimOp::Mul,
                    vec![
                        Expr::Var(n.clone()),
                        Expr::Call(
                            f,
                            vec![Expr::Prim(
                                PrimOp::Sub,
                                vec![Expr::Var(n.clone()), Expr::int(1)],
                            )],
                        ),
                    ],
                ),
            ),
        );
        pb.set_body(f, body);
        pb.entry(f);
        let p = pb.finish();
        let mut o = Oracle::new(&p, 1_000_000);
        let out = o.run_entry(vec![SValue::Int(10)]).unwrap();
        assert!(matches!(out, SValue::Int(3628800)));
    }

    #[test]
    fn rejects_rc_instructions() {
        let mut pb = ProgramBuilder::new();
        let x = pb.fresh("x");
        pb.fun(
            "f",
            vec![x.clone()],
            Expr::dup(x.clone(), Expr::Var(x.clone())),
        );
        let p = pb.finish();
        let mut o = Oracle::new(&p, 1000);
        let err = o
            .run_fun(perceus_core::ir::FunId(0), vec![SValue::Int(1)])
            .unwrap_err();
        assert!(matches!(err, OracleError::Stuck(_)));
    }

    #[test]
    fn fuel_limits_divergence() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("spin", vec![]);
        pb.set_body(f, Expr::Call(f, vec![]));
        pb.entry(f);
        let p = pb.finish();
        let mut o = Oracle::new(&p, 10_000);
        // Either fuel or the depth guard stops it — never a hang.
        let err = o.run_entry(vec![]).unwrap_err();
        assert!(matches!(err, OracleError::OutOfFuel | OracleError::TooDeep));
    }

    #[test]
    fn mutable_refs_work() {
        use perceus_core::ir::expr::PrimOp;
        // fun f() { val r = ref(1); r := 5; !r }  (with explicit dups of
        // r not needed in the oracle — it is rc-free)
        let mut pb = ProgramBuilder::new();
        let r = pb.fresh("r");
        let body = Expr::let_(
            r.clone(),
            Expr::Prim(PrimOp::RefNew, vec![Expr::int(1)]),
            Expr::seq(
                Expr::Prim(PrimOp::RefSet, vec![Expr::Var(r.clone()), Expr::int(5)]),
                Expr::Prim(PrimOp::RefGet, vec![Expr::Var(r.clone())]),
            ),
        );
        let f = pb.fun("f", vec![], body);
        pb.entry(f);
        let p = pb.finish();
        let mut o = Oracle::new(&p, 10_000);
        let out = o.run_entry(vec![]).unwrap();
        assert!(matches!(out, SValue::Int(5)));
    }
}
