//! The attributed profiler: every heap/RC event credited to the machine
//! call frame that executed it, and from there back to source.
//!
//! The paper's evaluation (§4) is entirely a measurement exercise —
//! Fig. 9/11 compare *counts* of reference-count operations and
//! allocations across systems — and the Koka/Lean runtimes this
//! reproduction follows grew matching profiling layers ("Counting
//! Immutable Beans" reports per-benchmark RC totals the same way). This
//! module is the attribution substrate behind `perceus-suite profile`
//! and the `Profile` section of `perceus-bench`:
//!
//! * the machine maintains a **calling-context tree** (CCT): one node
//!   per distinct stack of [`FrameKind`]s (top-level functions and
//!   lifted lambdas). Enter/exit follow call frames; tail calls replace
//!   the current node in place, so FBIP loops do not grow the tree;
//! * every public heap entry point (`dup`, `drop`, `decref`,
//!   `is-unique`, alloc, reuse, token and share operations) snapshots
//!   the attributable [`Stats`] counters before running and credits the
//!   difference to the current CCT node afterwards. Attribution is
//!   therefore **exact by construction**: summing all nodes reproduces
//!   the run's `Stats` field for field, whatever path an operation
//!   took (see `ProfCounts::capture`);
//! * dedicated hooks record what the counter diff cannot: fresh
//!   allocations **by size class** and **by constructor**, reuse hits
//!   by constructor, and per-function **peak live words** (an owner
//!   table maps each heap slot to the frame that allocated it, so a
//!   free is debited from the allocator's liveness, not the dropper's);
//! * when the profiler is disabled (the default) every hook is one
//!   branch on an `Option` that is `None` — the heap's hot paths are
//!   untouched, which the zero-overhead test in `perceus-suite`
//!   asserts by comparing `Stats` of profiled and unprofiled runs.
//!
//! Profiles from concurrent machines merge with [`Profiler::merge`],
//! which is associative with the empty profiler as identity (counts
//! add, peaks max, CCT children keep the left operand's order) — the
//! same discipline as [`Stats::merge`], so `suite::parallel` can fold
//! worker profiles in thread-index order and get a deterministic
//! report. See `docs/OBSERVABILITY.md` for the full pipeline.

use crate::code::Compiled;
use crate::heap::stats::Stats;
use crate::heap::{BlockTag, LamId, NUM_SIZE_CLASSES};
use perceus_core::ir::{CtorId, FunId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Which code the machine is executing: the attribution key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Outside any function: machine entry glue and the final result
    /// drop.
    Root,
    /// A top-level function.
    Fun(FunId),
    /// A lifted lambda.
    Lam(LamId),
}

impl FrameKind {
    /// Deterministic ordering key for reports (root, then functions by
    /// id, then lambdas by id).
    fn order_key(self) -> (u8, u32) {
        match self {
            FrameKind::Root => (0, 0),
            FrameKind::Fun(f) => (1, f.0),
            FrameKind::Lam(l) => (2, l.0),
        }
    }

    /// Human-readable name against a compiled program.
    pub fn name(self, code: &Compiled) -> String {
        match self {
            FrameKind::Root => "<toplevel>".to_string(),
            FrameKind::Fun(f) => code.funs[f.0 as usize].name.to_string(),
            FrameKind::Lam(l) => format!("<lambda#{}>", l.0),
        }
    }
}

/// The attributable subset of [`Stats`]: the monotonic event counters.
/// Gauges (`live_*`) and high-water marks are excluded — a windowed
/// difference of a gauge is not an event count — and so is `steps`,
/// which the machine (not the heap) advances. Arithmetic is wrapping:
/// `decref` transiently *decrements* `Stats::drops` when reclassifying
/// an internal child release, and the window diff must absorb that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfCounts {
    pub dups: u64,
    pub drops: u64,
    pub decrefs: u64,
    pub unique_tests: u64,
    pub unique_hits: u64,
    pub allocations: u64,
    pub alloc_words: u64,
    pub reuses: u64,
    pub frees: u64,
    pub freelist_hits: u64,
    pub freelist_misses: u64,
    pub recycled_words: u64,
    pub field_writes: u64,
    pub skipped_writes: u64,
    pub token_frees: u64,
    pub shared_marks: u64,
    pub atomic_ops: u64,
    pub local_shared_ops: u64,
}

macro_rules! for_each_prof_counter {
    ($m:ident) => {
        $m!(
            dups,
            drops,
            decrefs,
            unique_tests,
            unique_hits,
            allocations,
            alloc_words,
            reuses,
            frees,
            freelist_hits,
            freelist_misses,
            recycled_words,
            field_writes,
            skipped_writes,
            token_frees,
            shared_marks,
            atomic_ops,
            local_shared_ops
        )
    };
}

impl ProfCounts {
    /// Snapshots the attributable counters of a [`Stats`].
    pub fn capture(s: &Stats) -> ProfCounts {
        macro_rules! cap {
            ($($f:ident),*) => { ProfCounts { $($f: s.$f),* } }
        }
        for_each_prof_counter!(cap)
    }

    /// Field-wise wrapping difference (`self - before`).
    #[must_use]
    pub fn diff(&self, before: &ProfCounts) -> ProfCounts {
        macro_rules! d {
            ($($f:ident),*) => { ProfCounts { $($f: self.$f.wrapping_sub(before.$f)),* } }
        }
        for_each_prof_counter!(d)
    }

    /// Field-wise accumulation.
    pub fn add(&mut self, other: &ProfCounts) {
        macro_rules! a {
            ($($f:ident),*) => {{ $(self.$f = self.$f.wrapping_add(other.$f);)* }}
        }
        for_each_prof_counter!(a);
    }

    /// Reference-count operations (the Fig. 9 `rc-ops` quantity).
    pub fn rc_ops(&self) -> u64 {
        self.dups + self.drops + self.decrefs + self.unique_tests
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == ProfCounts::default()
    }

    /// `(label, value)` pairs in canonical report order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        macro_rules! e {
            ($($f:ident),*) => { vec![$((stringify!($f), self.$f)),*] }
        }
        for_each_prof_counter!(e)
    }
}

/// Construction profile of one constructor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtorCounts {
    /// Fresh heap allocations of this constructor.
    pub allocs: u64,
    /// Constructions served in place from a reuse token (§2.4/§2.5).
    pub reuses: u64,
}

impl CtorCounts {
    /// Fraction of constructions served by reuse.
    pub fn reuse_rate(&self) -> f64 {
        let t = self.allocs + self.reuses;
        if t == 0 {
            0.0
        } else {
            self.reuses as f64 / t as f64
        }
    }
}

/// One calling-context-tree node.
#[derive(Debug, Clone)]
struct Node {
    frame: FrameKind,
    parent: usize,
    /// Children in first-seen order (deterministic for a deterministic
    /// run; `merge` preserves the left operand's order).
    children: Vec<usize>,
    /// Times this exact context was entered (tail calls count).
    calls: u64,
    /// Events attributed to this context (exclusive, not inherited).
    counts: ProfCounts,
    /// Fresh allocations by size class (index = field count; the last
    /// bucket collects oversize blocks).
    alloc_classes: [u64; NUM_SIZE_CLASSES + 1],
}

impl Node {
    fn new(frame: FrameKind, parent: usize) -> Node {
        Node {
            frame,
            parent,
            children: Vec::new(),
            calls: 0,
            counts: ProfCounts::default(),
            alloc_classes: [0; NUM_SIZE_CLASSES + 1],
        }
    }
}

/// Per-frame live-word accounting (peak liveness attribution).
#[derive(Debug, Clone, Copy, Default)]
struct FrameLive {
    live_words: u64,
    peak_words: u64,
}

/// The attributed profiler. Owned by the heap (so allocation hooks can
/// reach it); driven by the machine (which tracks call frames).
#[derive(Debug, Clone)]
pub struct Profiler {
    nodes: Vec<Node>,
    cur: usize,
    /// Per-constructor construction counts, indexed by `CtorId` (grown
    /// on demand).
    ctors: Vec<CtorCounts>,
    /// Interned frames for the liveness table.
    frames: Vec<FrameKind>,
    frame_ids: HashMap<FrameKind, u32>,
    /// Live/peak words per interned frame, debited on free from the
    /// *allocating* frame.
    live: Vec<FrameLive>,
    /// `owners[slot] = (interned frame, words)` for live local blocks.
    owners: Vec<Option<(u32, u32)>>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// An empty profiler positioned at the root context.
    pub fn new() -> Profiler {
        Profiler {
            nodes: vec![Node::new(FrameKind::Root, 0)],
            cur: 0,
            ctors: Vec::new(),
            frames: Vec::new(),
            frame_ids: HashMap::new(),
            live: Vec::new(),
            owners: Vec::new(),
        }
    }

    fn child(&mut self, parent: usize, frame: FrameKind) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].frame == frame)
        {
            return c;
        }
        let c = self.nodes.len();
        self.nodes.push(Node::new(frame, parent));
        self.nodes[parent].children.push(c);
        c
    }

    /// Enters a call frame (machine: function entry / saved call frame).
    pub fn enter(&mut self, frame: FrameKind) {
        let c = self.child(self.cur, frame);
        self.nodes[c].calls += 1;
        self.cur = c;
    }

    /// Leaves the current frame (machine: `ret` popping a call frame).
    pub fn exit(&mut self) {
        self.cur = self.nodes[self.cur].parent;
    }

    /// Tail call: the current frame is replaced in place — the tree
    /// stays flat for FBIP loops instead of growing one node per
    /// iteration.
    pub fn tail(&mut self, frame: FrameKind) {
        let parent = self.nodes[self.cur].parent;
        let c = self.child(parent, frame);
        self.nodes[c].calls += 1;
        self.cur = c;
    }

    /// Credits a counter window to the current context.
    pub fn record(&mut self, delta: &ProfCounts) {
        self.nodes[self.cur].counts.add(delta);
    }

    fn intern(&mut self, frame: FrameKind) -> u32 {
        if let Some(&id) = self.frame_ids.get(&frame) {
            return id;
        }
        let id = self.frames.len() as u32;
        self.frames.push(frame);
        self.live.push(FrameLive::default());
        self.frame_ids.insert(frame, id);
        id
    }

    /// A fresh local-heap allocation: size class + constructor + owner
    /// bookkeeping (called by the heap next to `Stats::on_fresh_alloc`).
    pub fn on_alloc(&mut self, slot: u32, tag: BlockTag, words: u64) {
        let class = (words as usize - 1).min(NUM_SIZE_CLASSES);
        self.nodes[self.cur].alloc_classes[class] += 1;
        if let BlockTag::Ctor(c) = tag {
            self.ctor_mut(c).allocs += 1;
        }
        let frame = self.nodes[self.cur].frame;
        let fid = self.intern(frame);
        let entry = &mut self.live[fid as usize];
        entry.live_words += words;
        entry.peak_words = entry.peak_words.max(entry.live_words);
        let slot = slot as usize;
        if slot >= self.owners.len() {
            self.owners.resize(slot + 1, None);
        }
        self.owners[slot] = Some((fid, words as u32));
    }

    /// A construction served in place from a reuse token. The cell's
    /// owner (and live accounting) stays with the frame that originally
    /// allocated the storage — reuse holds memory, it does not move it.
    pub fn on_reuse(&mut self, ctor: CtorId) {
        self.ctor_mut(ctor).reuses += 1;
    }

    /// A local block left the heap (freed, token-released, swept, or
    /// evicted to the shared segment): debit the allocating frame.
    pub fn on_release(&mut self, slot: u32) {
        if let Some(Some((fid, words))) = self.owners.get_mut(slot as usize).map(Option::take) {
            self.live[fid as usize].live_words -= words as u64;
        }
    }

    fn ctor_mut(&mut self, c: CtorId) -> &mut CtorCounts {
        let i = c.0 as usize;
        if i >= self.ctors.len() {
            self.ctors.resize(i + 1, CtorCounts::default());
        }
        &mut self.ctors[i]
    }

    /// Sum of every node's counts — equals `ProfCounts::capture` of the
    /// run's final `Stats` (exactness by construction; asserted by the
    /// suite's profile tests).
    pub fn totals(&self) -> ProfCounts {
        let mut t = ProfCounts::default();
        for n in &self.nodes {
            t.add(&n.counts);
        }
        t
    }

    /// Merges two profiles (associative; `Profiler::new()` is the
    /// identity): CCT counts add context-wise, constructor counts add,
    /// per-frame live words add and peaks take the max — concurrent
    /// heaps are disjoint, so the combined peak is bounded by the max
    /// any one actor observed (the `Stats::merge` argument).
    #[must_use]
    pub fn merge(&self, other: &Profiler) -> Profiler {
        let mut out = self.clone();
        // Post-run profiles carry no live blocks to track.
        out.owners.clear();
        // CCT merge: walk `other` and mirror each context into `out`.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)]; // (out node, other node)
        while let Some((o, t)) = stack.pop() {
            out.nodes[o].calls += other.nodes[t].calls;
            let delta = other.nodes[t].counts;
            out.nodes[o].counts.add(&delta);
            for k in 0..other.nodes[t].alloc_classes.len() {
                out.nodes[o].alloc_classes[k] += other.nodes[t].alloc_classes[k];
            }
            for &tc in &other.nodes[t].children {
                let frame = other.nodes[tc].frame;
                let oc = out.child(o, frame);
                stack.push((oc, tc));
            }
        }
        // Constructor counts.
        if other.ctors.len() > out.ctors.len() {
            out.ctors.resize(other.ctors.len(), CtorCounts::default());
        }
        for (i, c) in other.ctors.iter().enumerate() {
            out.ctors[i].allocs += c.allocs;
            out.ctors[i].reuses += c.reuses;
        }
        // Liveness: add live, max peaks, per frame kind.
        for (i, fl) in other.live.iter().enumerate() {
            let fid = out.intern(other.frames[i]) as usize;
            out.live[fid].live_words += fl.live_words;
            out.live[fid].peak_words = out.live[fid].peak_words.max(fl.peak_words);
        }
        out
    }

    /// Aggregates the CCT by frame (all contexts of one function fold
    /// together), in deterministic order: root, functions by id,
    /// lambdas by id.
    pub fn per_frame(&self) -> Vec<FrameProfile> {
        let mut by_frame: HashMap<FrameKind, FrameProfile> = HashMap::new();
        for n in &self.nodes {
            let e = by_frame.entry(n.frame).or_insert_with(|| FrameProfile {
                frame: n.frame,
                ..FrameProfile::default()
            });
            e.calls += n.calls;
            e.counts.add(&n.counts);
            for (k, c) in n.alloc_classes.iter().enumerate() {
                e.alloc_classes[k] += c;
            }
        }
        for (i, fl) in self.live.iter().enumerate() {
            if let Some(e) = by_frame.get_mut(&self.frames[i]) {
                e.peak_live_words = fl.peak_words;
            }
        }
        let mut rows: Vec<FrameProfile> = by_frame
            .into_values()
            .filter(|r| r.calls > 0 || !r.counts.is_zero() || r.frame == FrameKind::Root)
            .collect();
        rows.sort_by_key(|r| r.frame.order_key());
        rows
    }

    /// Per-constructor construction profile, by `CtorId`, skipping
    /// constructors that were never built on the heap.
    pub fn per_ctor(&self) -> Vec<(CtorId, CtorCounts)> {
        self.ctors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.allocs + c.reuses > 0)
            .map(|(i, c)| (CtorId(i as u32), *c))
            .collect()
    }

    /// Flamegraph-compatible folded stacks over the machine call
    /// frames: one `frame;frame;... value` line per context with a
    /// nonzero metric, in deterministic DFS order.
    pub fn render_folded(&self, code: &Compiled, metric: ProfMetric) -> String {
        let mut out = String::new();
        let mut path: Vec<String> = Vec::new();
        self.fold_node(0, code, metric, &mut path, &mut out);
        out
    }

    fn fold_node(
        &self,
        node: usize,
        code: &Compiled,
        metric: ProfMetric,
        path: &mut Vec<String>,
        out: &mut String,
    ) {
        path.push(self.nodes[node].frame.name(code));
        let v = metric.of(&self.nodes[node]);
        if v > 0 {
            let _ = writeln!(out, "{} {v}", path.join(";"));
        }
        for &c in &self.nodes[node].children {
            self.fold_node(c, code, metric, path, out);
        }
        path.pop();
    }

    /// The complete profile as a JSON document (schema in
    /// `docs/OBSERVABILITY.md`). `src` enables source locations: each
    /// function row gains `"src":{"start":..,"end":..,"line":..}` from
    /// the span table the front end threaded through the program.
    pub fn render_json(&self, code: &Compiled, src: Option<&str>) -> String {
        let mut out = String::from("{\"functions\":[");
        for (i, r) in self.per_frame().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"calls\":{}",
                r.frame.name(code),
                r.calls
            );
            if let FrameKind::Fun(f) = r.frame {
                if let Some(&(start, end)) = code.fun_spans.get(f.0 as usize) {
                    let _ = write!(out, ",\"src\":{{\"start\":{start},\"end\":{end}");
                    if let Some(text) = src {
                        let (line, col) = line_col(text, start);
                        let _ = write!(out, ",\"line\":{line},\"col\":{col}");
                    }
                    out.push('}');
                }
            }
            for (k, v) in r.counts.entries() {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            let classes: Vec<String> = r.alloc_classes.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                ",\"rc_ops\":{},\"alloc_by_class\":[{}],\"peak_live_words\":{}}}",
                r.counts.rc_ops(),
                classes.join(","),
                r.peak_live_words
            );
        }
        out.push_str("],\"ctors\":[");
        for (i, (id, c)) in self.per_ctor().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let info = code.types.ctor(*id);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"arity\":{},\"allocs\":{},\"reuses\":{},\"reuse_rate\":{:.4}",
                info.name,
                info.arity,
                c.allocs,
                c.reuses,
                c.reuse_rate()
            );
            if let Some((start, end)) = info.span {
                let _ = write!(out, ",\"src\":{{\"start\":{start},\"end\":{end}");
                if let Some(text) = src {
                    let (line, col) = line_col(text, start);
                    let _ = write!(out, ",\"line\":{line},\"col\":{col}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"totals\":{");
        let totals = self.totals();
        for (i, (k, v)) in totals.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        let _ = write!(out, ",\"rc_ops\":{}}}}}", totals.rc_ops());
        out
    }
}

/// Aggregated profile of one frame (all calling contexts folded).
#[derive(Debug, Clone)]
pub struct FrameProfile {
    /// The frame.
    pub frame: FrameKind,
    /// Times entered.
    pub calls: u64,
    /// Events attributed.
    pub counts: ProfCounts,
    /// Fresh allocations by size class.
    pub alloc_classes: [u64; NUM_SIZE_CLASSES + 1],
    /// High-water mark of words this frame had allocated and not yet
    /// freed (debited at free from the allocating frame).
    pub peak_live_words: u64,
}

impl Default for FrameProfile {
    fn default() -> Self {
        FrameProfile {
            frame: FrameKind::Root,
            calls: 0,
            counts: ProfCounts::default(),
            alloc_classes: [0; NUM_SIZE_CLASSES + 1],
            peak_live_words: 0,
        }
    }
}

/// Which quantity a folded-stack line reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfMetric {
    /// dup + drop + decref + is-unique.
    RcOps,
    /// Fresh allocations.
    Allocs,
    /// Fresh words allocated.
    AllocWords,
    /// Reuse-token constructions.
    Reuses,
}

impl ProfMetric {
    /// All metrics with their CLI names.
    pub const ALL: [(ProfMetric, &'static str); 4] = [
        (ProfMetric::RcOps, "rc-ops"),
        (ProfMetric::Allocs, "allocs"),
        (ProfMetric::AllocWords, "alloc-words"),
        (ProfMetric::Reuses, "reuses"),
    ];

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<ProfMetric> {
        Self::ALL.iter().find(|(_, n)| *n == name).map(|(m, _)| *m)
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        Self::ALL.iter().find(|(m, _)| *m == self).unwrap().1
    }

    fn of(self, n: &Node) -> u64 {
        match self {
            ProfMetric::RcOps => n.counts.rc_ops(),
            ProfMetric::Allocs => n.counts.allocations,
            ProfMetric::AllocWords => n.counts.alloc_words,
            ProfMetric::Reuses => n.counts.reuses,
        }
    }
}

/// 1-based line/column of a byte offset.
fn line_col(src: &str, offset: u32) -> (u32, u32) {
    let upto = &src[..(offset as usize).min(src.len())];
    let line = upto.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    let col = upto.bytes().rev().take_while(|&b| b != b'\n').count() as u32 + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(dups: u64, allocations: u64) -> ProfCounts {
        ProfCounts {
            dups,
            allocations,
            ..ProfCounts::default()
        }
    }

    #[test]
    fn capture_and_diff_roundtrip() {
        let mut s = Stats {
            dups: 5,
            drops: 3,
            ..Stats::default()
        };
        let before = ProfCounts::capture(&s);
        s.dups += 2;
        s.drops -= 1; // the decref reclassification pattern
        let d = ProfCounts::capture(&s).diff(&before);
        assert_eq!(d.dups, 2);
        assert_eq!(d.drops, u64::MAX); // wrapping: absorbed by a later add
        let mut acc = counts(0, 0);
        acc.drops = 1;
        acc.add(&d);
        assert_eq!(acc.drops, 0);
    }

    #[test]
    fn cct_enter_exit_tail() {
        let mut p = Profiler::new();
        p.enter(FrameKind::Fun(FunId(0)));
        p.record(&counts(1, 0));
        p.enter(FrameKind::Fun(FunId(1)));
        p.record(&counts(2, 0));
        // Tail-recursive loop: the node is reused, not regrown.
        for _ in 0..10 {
            p.tail(FrameKind::Fun(FunId(1)));
        }
        p.record(&counts(3, 0));
        p.exit();
        p.record(&counts(4, 0));
        p.exit();
        assert_eq!(p.cur, 0);
        assert_eq!(p.nodes.len(), 3, "tail calls do not grow the tree");
        assert_eq!(p.totals().dups, 10);
        let rows = p.per_frame();
        let f1 = rows
            .iter()
            .find(|r| r.frame == FrameKind::Fun(FunId(1)))
            .unwrap();
        assert_eq!(f1.calls, 11);
        assert_eq!(f1.counts.dups, 5);
    }

    #[test]
    fn owner_table_debits_the_allocating_frame() {
        let mut p = Profiler::new();
        p.enter(FrameKind::Fun(FunId(0)));
        p.on_alloc(0, BlockTag::Ctor(CtorId(2)), 3);
        p.on_alloc(1, BlockTag::Ctor(CtorId(2)), 3);
        p.exit();
        p.enter(FrameKind::Fun(FunId(1)));
        // Fun(1) frees what Fun(0) allocated: the debit lands on Fun(0).
        p.on_release(0);
        p.on_alloc(7, BlockTag::MutRef, 2);
        p.exit();
        let rows = p.per_frame();
        let f0 = rows
            .iter()
            .find(|r| r.frame == FrameKind::Fun(FunId(0)))
            .unwrap();
        assert_eq!(f0.peak_live_words, 6);
        let f1 = rows
            .iter()
            .find(|r| r.frame == FrameKind::Fun(FunId(1)))
            .unwrap();
        assert_eq!(f1.peak_live_words, 2);
        assert_eq!(
            p.per_ctor(),
            vec![(
                CtorId(2),
                CtorCounts {
                    allocs: 2,
                    reuses: 0
                }
            )]
        );
    }

    #[test]
    fn merge_is_associative_with_identity() {
        let mk = |d: u64| {
            let mut p = Profiler::new();
            p.enter(FrameKind::Fun(FunId(0)));
            p.record(&counts(d, 1));
            p.on_alloc(0, BlockTag::Ctor(CtorId(0)), 2);
            p.on_release(0);
            p.exit();
            p
        };
        let (a, b, c) = (mk(1), mk(2), mk(4));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left.totals(), right.totals());
        assert_eq!(left.nodes.len(), right.nodes.len());
        assert_eq!(left.per_ctor(), right.per_ctor());
        let id = Profiler::new();
        assert_eq!(a.merge(&id).totals(), a.totals());
        assert_eq!(id.merge(&a).totals(), a.totals());
        assert_eq!(left.totals().dups, 7);
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 5), (2, 3));
        assert_eq!(line_col(src, 7), (3, 1));
    }
}
