//! Error-path tests for the heap: every misuse of the specialized
//! instructions is a deterministic error (the dynamic half of the
//! soundness story), never silent corruption.

use perceus_core::ir::CtorId;
use perceus_runtime::heap::{BlockTag, Heap, ReclaimMode};
use perceus_runtime::{RuntimeError, Value};

fn heap() -> Heap {
    Heap::new(ReclaimMode::Rc)
}

fn cell(h: &mut Heap, fields: Vec<Value>) -> Value {
    Value::Ref(h.alloc(BlockTag::Ctor(CtorId(2)), fields.into_boxed_slice()))
}

#[test]
fn free_of_shared_cell_is_rejected() {
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    h.dup(v).unwrap();
    let err = h.free_cell(v).unwrap_err();
    assert!(matches!(err, RuntimeError::Internal(_)), "{err}");
}

#[test]
fn claim_of_shared_cell_is_rejected() {
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    h.dup(v).unwrap();
    assert!(h.claim(v).is_err());
}

#[test]
fn decref_cannot_hit_zero_on_unshared() {
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    // count is 1: a decref here would orphan the cell — rejected.
    let err = h.decref(v).unwrap_err();
    assert!(matches!(err, RuntimeError::Internal(_)), "{err}");
}

#[test]
fn reuse_into_unclaimed_cell_is_rejected() {
    let mut h = heap();
    let Value::Ref(a) = cell(&mut h, vec![Value::Int(1)]) else {
        unreachable!()
    };
    // The cell was never claimed by drop-reuse.
    let err = h
        .alloc_into(a, CtorId(2), &[Value::Int(2)], &[])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Internal(_)), "{err}");
}

#[test]
fn reuse_size_mismatch_is_rejected() {
    let mut h = heap();
    let v = cell(&mut h, vec![Value::Int(1), Value::Int(2)]);
    let tok = h.drop_reuse(v).unwrap();
    let Value::Token(Some(t)) = tok else {
        unreachable!()
    };
    let err = h
        .alloc_into(t, CtorId(2), &[Value::Int(9)], &[])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Internal(_)), "{err}");
    // Release the claimed memory so the heap balances.
    h.drop_token(Value::Token(Some(t))).unwrap();
    assert_eq!(h.live_blocks(), 0);
}

#[test]
fn drop_of_claimed_cell_is_rejected() {
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    let tok = h.drop_reuse(v).unwrap();
    let err = h.drop_value(v).unwrap_err();
    assert!(matches!(err, RuntimeError::Internal(_)), "{err}");
    h.drop_token(tok).unwrap();
}

#[test]
fn double_free_is_use_after_free() {
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    h.drop_value(v).unwrap();
    let err = h.drop_value(v).unwrap_err();
    assert!(matches!(err, RuntimeError::UseAfterFree(_)), "{err}");
}

#[test]
fn stale_address_after_slot_reuse_is_detected() {
    let mut h = heap();
    let old = cell(&mut h, vec![]);
    h.drop_value(old).unwrap();
    // The slot gets a new tenant with a bumped generation.
    let new = cell(&mut h, vec![]);
    assert!(h.dup(old).is_err(), "stale address must not alias");
    h.drop_value(new).unwrap();
}

#[test]
fn tshare_of_claimed_cell_is_rejected() {
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    let tok = h.drop_reuse(v).unwrap();
    assert!(h.tshare(v).is_err());
    h.drop_token(tok).unwrap();
}

#[test]
fn drop_token_of_non_token_is_rejected() {
    let mut h = heap();
    assert!(h.drop_token(Value::Int(1)).is_err());
    assert!(
        h.drop_token(Value::Token(None)).is_ok(),
        "null token is fine"
    );
}

#[test]
fn stats_display_is_informative() {
    let mut h = heap();
    let v = cell(&mut h, vec![Value::Int(1)]);
    h.dup(v).unwrap();
    h.drop_value(v).unwrap();
    h.drop_value(v).unwrap();
    let text = h.stats.to_string();
    assert!(text.contains("alloc 1"), "{text}");
    assert!(text.contains("1 dup"), "{text}");
}

#[test]
fn shared_count_roundtrip_preserves_balance() {
    // dup/drop a shared cell many times; the negative encoding must
    // stay exact and free at the true zero.
    let mut h = heap();
    let v = cell(&mut h, vec![]);
    h.tshare(v).unwrap();
    for _ in 0..1000 {
        h.dup(v).unwrap();
    }
    for _ in 0..1000 {
        h.drop_value(v).unwrap();
        assert_eq!(h.live_blocks(), 1);
    }
    h.drop_value(v).unwrap();
    assert_eq!(h.live_blocks(), 0);
}
