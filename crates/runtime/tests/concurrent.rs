//! Real multi-threaded exercises of the shared segment (§2.7.2): many
//! threads hammering dup/drop on the same shared structure through
//! their own thread-local heaps, with the join-time garbage-free audit
//! over both segments afterwards.

use perceus_core::ir::CtorId;
use perceus_runtime::audit;
use perceus_runtime::heap::{BlockTag, Heap, ReclaimMode, SharedHeap, STICKY};
use perceus_runtime::value::Value;
use std::sync::Arc;

fn cell(h: &mut Heap, fields: Vec<Value>) -> Value {
    Value::Ref(h.alloc(BlockTag::Ctor(CtorId(0)), fields.into_boxed_slice()))
}

/// Builds a small list-like shared structure and hands back the frozen
/// segment plus the shared root, with `owners` references outstanding.
fn build_shared(owners: u32) -> (Arc<SharedHeap>, Value) {
    let mut builder = Heap::new(ReclaimMode::Rc);
    let mut seg = SharedHeap::new();
    let mut v = cell(&mut builder, vec![Value::Int(0)]);
    for i in 1..16 {
        v = cell(&mut builder, vec![Value::Int(i), v]);
    }
    let shared = builder.mark_shared(v, &mut seg).unwrap();
    assert_eq!(builder.live_blocks(), 0, "builder heap drained by the move");
    seg.retain(shared, owners - 1).unwrap();
    (Arc::new(seg), shared)
}

#[test]
fn contended_dup_drop_keeps_counts_exact() {
    const THREADS: u32 = 8;
    const ITERS: u64 = 2_000;
    let (seg, shared) = build_shared(THREADS);
    let total_atomics: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let seg = seg.clone();
                s.spawn(move || {
                    let mut h = Heap::new(ReclaimMode::Rc);
                    h.attach_shared(seg);
                    for _ in 0..ITERS {
                        h.dup(shared).unwrap();
                        h.drop_value(shared).unwrap();
                    }
                    // Consume this thread's own reference last.
                    h.drop_value(shared).unwrap();
                    h.stats.atomic_ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    // Every dup/drop paid a real RMW; the final 16-block teardown and
    // the per-thread root drops add more.
    assert!(total_atomics >= THREADS as u64 * ITERS * 2);
    assert_eq!(seg.live_blocks(), 0, "all references consumed");
    let report = audit::check_shared_at_join(&seg).unwrap();
    assert_eq!(report.live_blocks, 0);
    assert_eq!(report.freed_blocks, 16);
}

#[test]
fn exactly_one_thread_wins_the_closing_cas() {
    // All threads drop their reference simultaneously; the 16-block
    // spine must be freed exactly once (double frees would show up as
    // use-after-free errors or a negative live gauge).
    const THREADS: u32 = 8;
    for _ in 0..50 {
        let (seg, shared) = build_shared(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let seg = seg.clone();
                s.spawn(move || {
                    let mut h = Heap::new(ReclaimMode::Rc);
                    h.attach_shared(seg);
                    h.drop_value(shared).unwrap();
                });
            }
        });
        assert_eq!(seg.live_blocks(), 0);
        audit::check_shared_at_join(&seg).unwrap();
    }
}

#[test]
fn local_blocks_stay_on_the_non_atomic_fast_path() {
    // A worker doing purely local work next to an attached segment
    // must never pay an atomic: the fast path of §2.7.2.
    let (seg, shared) = build_shared(1);
    let mut h = Heap::new(ReclaimMode::Rc);
    h.attach_shared(seg.clone());
    let local = cell(&mut h, vec![Value::Int(9)]);
    for _ in 0..100 {
        h.dup(local).unwrap();
        h.drop_value(local).unwrap();
    }
    assert_eq!(h.stats.atomic_ops, 0, "local traffic is non-atomic");
    h.drop_value(local).unwrap();
    h.drop_value(shared).unwrap();
    assert!(h.stats.atomic_ops > 0, "the shared teardown was atomic");
}

#[test]
fn pinned_shared_blocks_survive_concurrent_drops() {
    let mut builder = Heap::new(ReclaimMode::Rc);
    let mut seg = SharedHeap::new();
    let v = cell(&mut builder, vec![Value::Int(5)]);
    let Value::Ref(addr) = v else { panic!() };
    builder.block_mut(addr).unwrap().header = STICKY;
    let shared = builder.mark_shared(v, &mut seg).unwrap();
    let seg = Arc::new(seg);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let seg = seg.clone();
            s.spawn(move || {
                let mut h = Heap::new(ReclaimMode::Rc);
                h.attach_shared(seg);
                for _ in 0..1_000 {
                    h.drop_value(shared).unwrap();
                }
                // Pinned headers never RMW: drops on them are free.
                assert_eq!(h.stats.atomic_ops, 0);
            });
        }
    });
    assert_eq!(seg.live_blocks(), 1, "pinned block never freed");
    let report = audit::check_shared_at_join(&seg).unwrap();
    assert_eq!(report.pinned_blocks, 1);
}

/// The closing CAS races epoch retirement and reclamation: droppers
/// release their references while a pinned reader walks the structure
/// through guard-protected views (zero RMWs) and a dedicated thread
/// hammers [`SharedHeap::try_reclaim`] the whole time. The pins must
/// keep every viewed block's storage valid; once the world quiesces,
/// every slot must have been freed exactly once and physically
/// reclaimed.
#[test]
fn epoch_reclaim_races_the_closing_cas() {
    use std::sync::atomic::{AtomicBool, Ordering};
    const DROPPERS: u32 = 6;
    for _ in 0..20 {
        let (seg, shared) = build_shared(DROPPERS + 1);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let reclaimer_seg = seg.clone();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    reclaimer_seg.try_reclaim();
                    std::hint::spin_loop();
                }
            });
            for _ in 0..DROPPERS {
                let seg = seg.clone();
                s.spawn(move || {
                    let mut h = Heap::new(ReclaimMode::Rc);
                    h.attach_shared(seg);
                    h.drop_value(shared).unwrap();
                });
            }
            let reader_seg = seg.clone();
            let reader = s.spawn(move || {
                let mut h = Heap::new(ReclaimMode::Rc);
                h.attach_shared(reader_seg);
                for _ in 0..200 {
                    // Walk the whole spine through views: the reader's
                    // reference keeps it live, the epoch pin keeps the
                    // storage valid against the concurrent reclaimer.
                    let mut v = shared;
                    let mut expect = 15;
                    while let Value::Ref(a) = v {
                        let view = h.view(a).unwrap();
                        assert_eq!(view.fields[0], Value::Int(expect));
                        v = *view.fields.get(1).unwrap_or(&Value::Unit);
                        expect -= 1;
                    }
                    assert_eq!(expect, -1, "walked all 16 cells");
                }
                assert_eq!(h.stats.atomic_ops, 0, "views are RMW-free");
                // Release the reader's reference: whoever drops last
                // wins the closing CAS and retires the whole spine
                // while the reclaimer is still running.
                h.drop_value(shared).unwrap();
            });
            reader.join().unwrap();
            stop.store(true, Ordering::Relaxed);
        });
        seg.try_reclaim();
        assert_eq!(seg.live_blocks(), 0);
        let report = audit::check_shared_at_join(&seg).unwrap();
        assert_eq!(report.freed_blocks, 16, "each cell freed exactly once");
        assert_eq!(seg.reclaimed().0, 16, "all storage physically reclaimed");
    }
}

/// Weak upgrades race the death of their target: every racer sees
/// either a successful upgrade (a real strong reference it must then
/// drop) or a deterministic `None` — never garbage, never a panic —
/// and once the block is dead every subsequent upgrade returns `None`.
#[test]
fn weak_upgrade_after_free_is_deterministic() {
    use perceus_runtime::heap::BlockTag;
    const RACERS: u32 = 8;
    for _ in 0..20 {
        let mut seg = SharedHeap::new();
        let a = seg.alloc(
            BlockTag::Ctor(CtorId(0)),
            vec![Value::Int(7)].into_boxed_slice(),
            1,
        );
        let weak = seg.downgrade(a).unwrap();
        let strong = Value::Ref(a);
        let seg = Arc::new(seg);
        std::thread::scope(|s| {
            // One thread drops the only strong reference...
            let dropper_seg = seg.clone();
            s.spawn(move || {
                let mut h = Heap::new(ReclaimMode::Rc);
                h.attach_shared(dropper_seg);
                h.drop_value(strong).unwrap();
            });
            // ...while the racers upgrade the weak reference.
            for _ in 0..RACERS {
                let seg = seg.clone();
                s.spawn(move || {
                    let mut h = Heap::new(ReclaimMode::Rc);
                    h.attach_shared(seg);
                    for _ in 0..100 {
                        if let Some(v) = h.upgrade_weak(weak).unwrap() {
                            // A successful upgrade is a real strong
                            // reference: the field is readable and
                            // the reference must be released.
                            let Value::Ref(a) = v else { panic!() };
                            assert_eq!(h.view(a).unwrap().fields[0], Value::Int(7));
                            h.drop_value(v).unwrap();
                        }
                    }
                });
            }
        });
        // The block is dead; upgrades fail deterministically forever.
        let mut h = Heap::new(ReclaimMode::Rc);
        h.attach_shared(seg.clone());
        for _ in 0..10 {
            assert_eq!(h.upgrade_weak(weak).unwrap(), None);
        }
        h.drop_value(weak).unwrap();
        drop(h);
        assert_eq!(seg.live_blocks(), 0);
        let report = audit::check_shared_at_join(&seg).unwrap();
        assert_eq!(report.freed_blocks, 1);
        assert_eq!(report.weak_refs, 0, "the probe weak was released");
        assert_eq!(
            seg.reclaimed().0,
            1,
            "storage reclaimed before segment drop"
        );
    }
}

/// The §2.7.3 cycle demonstration, made reclaimable: a ring with
/// strong forward edges and a weak back edge. Plain reference counting
/// would leak a strong ring forever; with the back edge weak, dropping
/// the external root cascades through the whole ring, the weak edge
/// confers no liveness, and every slot is freed and reclaimed — the
/// garbage-free audit passes over the drained segment.
#[test]
fn cyclic_structure_with_weak_back_edge_reclaims() {
    use perceus_runtime::heap::BlockTag;
    let tag = BlockTag::Ctor(CtorId(0));
    let mut seg = SharedHeap::new();
    // Three nodes: [payload, next, back]. Forward edges are strong,
    // the ring-closing back edge (n2 -> n0) is weak.
    let n0 = seg.alloc(tag, vec![Value::Int(0), Value::Unit, Value::Unit].into(), 1);
    let n1 = seg.alloc(tag, vec![Value::Int(1), Value::Unit, Value::Unit].into(), 1);
    let n2 = seg.alloc(tag, vec![Value::Int(2), Value::Unit, Value::Unit].into(), 1);
    seg.link(n0, 1, Value::Ref(n1)).unwrap();
    seg.link(n1, 1, Value::Ref(n2)).unwrap();
    let back = seg.downgrade(n0).unwrap();
    seg.link(n2, 2, back).unwrap();
    // An external probe into the ring, to interrogate it after death.
    let probe = seg.downgrade(n1).unwrap();
    let seg = Arc::new(seg);

    let mut h = Heap::new(ReclaimMode::Rc);
    h.attach_shared(seg.clone());
    // The ring is alive and navigable: n0 -> n1 -> n2 -~> n0.
    assert_eq!(h.view(n2).unwrap().fields[0], Value::Int(2));
    let upgraded = h.upgrade_weak(probe).unwrap().expect("ring is live");
    h.drop_value(upgraded).unwrap();

    // Drop the only external strong reference: the cascade must free
    // the entire ring — the weak back edge confers no liveness.
    h.drop_value(Value::Ref(n0)).unwrap();
    assert_eq!(seg.live_blocks(), 0, "the ring is garbage and was freed");
    assert_eq!(h.upgrade_weak(probe).unwrap(), None, "the ring is dead");
    h.drop_value(probe).unwrap();
    drop(h); // detach: unpin and reclaim retired slots
    assert_eq!(seg.reclaimed().0, 3, "all three nodes physically reclaimed");
    let report = audit::check_shared_at_join(&seg).unwrap();
    assert_eq!(report.live_blocks, 0);
    assert_eq!(report.freed_blocks, 3);
    assert_eq!(report.weak_refs, 0);
    assert_eq!(report.reclaimed_blocks, 3);
}

#[test]
fn worker_audits_tolerate_shared_references_mid_run() {
    // A worker holding shared data inside local blocks passes the
    // in-flight heap audit (reachability crosses the segment boundary).
    let (seg, shared) = build_shared(2);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let seg = seg.clone();
            s.spawn(move || {
                let mut h = Heap::new(ReclaimMode::Rc);
                h.attach_shared(seg);
                let holder = cell(&mut h, vec![shared]);
                let Value::Ref(root) = holder else { panic!() };
                let report = audit::check_heap(&h, &[root]).unwrap();
                assert_eq!(report.live_blocks, 1);
                h.drop_value(holder).unwrap();
                assert_eq!(h.live_blocks(), 0);
            });
        }
    });
    assert_eq!(seg.live_blocks(), 0);
}
