//! Real multi-threaded exercises of the shared segment (§2.7.2): many
//! threads hammering dup/drop on the same shared structure through
//! their own thread-local heaps, with the join-time garbage-free audit
//! over both segments afterwards.

use perceus_core::ir::CtorId;
use perceus_runtime::audit;
use perceus_runtime::heap::{BlockTag, Heap, ReclaimMode, SharedHeap, STICKY};
use perceus_runtime::value::Value;
use std::sync::Arc;

fn cell(h: &mut Heap, fields: Vec<Value>) -> Value {
    Value::Ref(h.alloc(BlockTag::Ctor(CtorId(0)), fields.into_boxed_slice()))
}

/// Builds a small list-like shared structure and hands back the frozen
/// segment plus the shared root, with `owners` references outstanding.
fn build_shared(owners: u32) -> (Arc<SharedHeap>, Value) {
    let mut builder = Heap::new(ReclaimMode::Rc);
    let mut seg = SharedHeap::new();
    let mut v = cell(&mut builder, vec![Value::Int(0)]);
    for i in 1..16 {
        v = cell(&mut builder, vec![Value::Int(i), v]);
    }
    let shared = builder.mark_shared(v, &mut seg).unwrap();
    assert_eq!(builder.live_blocks(), 0, "builder heap drained by the move");
    seg.retain(shared, owners - 1).unwrap();
    (Arc::new(seg), shared)
}

#[test]
fn contended_dup_drop_keeps_counts_exact() {
    const THREADS: u32 = 8;
    const ITERS: u64 = 2_000;
    let (seg, shared) = build_shared(THREADS);
    let total_atomics: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let seg = seg.clone();
                s.spawn(move || {
                    let mut h = Heap::new(ReclaimMode::Rc);
                    h.attach_shared(seg);
                    for _ in 0..ITERS {
                        h.dup(shared).unwrap();
                        h.drop_value(shared).unwrap();
                    }
                    // Consume this thread's own reference last.
                    h.drop_value(shared).unwrap();
                    h.stats.atomic_ops
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    // Every dup/drop paid a real RMW; the final 16-block teardown and
    // the per-thread root drops add more.
    assert!(total_atomics >= THREADS as u64 * ITERS * 2);
    assert_eq!(seg.live_blocks(), 0, "all references consumed");
    let report = audit::check_shared_at_join(&seg).unwrap();
    assert_eq!(report.live_blocks, 0);
    assert_eq!(report.freed_blocks, 16);
}

#[test]
fn exactly_one_thread_wins_the_closing_cas() {
    // All threads drop their reference simultaneously; the 16-block
    // spine must be freed exactly once (double frees would show up as
    // use-after-free errors or a negative live gauge).
    const THREADS: u32 = 8;
    for _ in 0..50 {
        let (seg, shared) = build_shared(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let seg = seg.clone();
                s.spawn(move || {
                    let mut h = Heap::new(ReclaimMode::Rc);
                    h.attach_shared(seg);
                    h.drop_value(shared).unwrap();
                });
            }
        });
        assert_eq!(seg.live_blocks(), 0);
        audit::check_shared_at_join(&seg).unwrap();
    }
}

#[test]
fn local_blocks_stay_on_the_non_atomic_fast_path() {
    // A worker doing purely local work next to an attached segment
    // must never pay an atomic: the fast path of §2.7.2.
    let (seg, shared) = build_shared(1);
    let mut h = Heap::new(ReclaimMode::Rc);
    h.attach_shared(seg.clone());
    let local = cell(&mut h, vec![Value::Int(9)]);
    for _ in 0..100 {
        h.dup(local).unwrap();
        h.drop_value(local).unwrap();
    }
    assert_eq!(h.stats.atomic_ops, 0, "local traffic is non-atomic");
    h.drop_value(local).unwrap();
    h.drop_value(shared).unwrap();
    assert!(h.stats.atomic_ops > 0, "the shared teardown was atomic");
}

#[test]
fn pinned_shared_blocks_survive_concurrent_drops() {
    let mut builder = Heap::new(ReclaimMode::Rc);
    let mut seg = SharedHeap::new();
    let v = cell(&mut builder, vec![Value::Int(5)]);
    let Value::Ref(addr) = v else { panic!() };
    builder.block_mut(addr).unwrap().header = STICKY;
    let shared = builder.mark_shared(v, &mut seg).unwrap();
    let seg = Arc::new(seg);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let seg = seg.clone();
            s.spawn(move || {
                let mut h = Heap::new(ReclaimMode::Rc);
                h.attach_shared(seg);
                for _ in 0..1_000 {
                    h.drop_value(shared).unwrap();
                }
                // Pinned headers never RMW: drops on them are free.
                assert_eq!(h.stats.atomic_ops, 0);
            });
        }
    });
    assert_eq!(seg.live_blocks(), 1, "pinned block never freed");
    let report = audit::check_shared_at_join(&seg).unwrap();
    assert_eq!(report.pinned_blocks, 1);
}

#[test]
fn worker_audits_tolerate_shared_references_mid_run() {
    // A worker holding shared data inside local blocks passes the
    // in-flight heap audit (reachability crosses the segment boundary).
    let (seg, shared) = build_shared(2);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let seg = seg.clone();
            s.spawn(move || {
                let mut h = Heap::new(ReclaimMode::Rc);
                h.attach_shared(seg);
                let holder = cell(&mut h, vec![shared]);
                let Value::Ref(root) = holder else { panic!() };
                let report = audit::check_heap(&h, &[root]).unwrap();
                assert_eq!(report.live_blocks, 1);
                h.drop_value(holder).unwrap();
                assert_eq!(h.live_blocks(), 0);
            });
        }
    });
    assert_eq!(seg.live_blocks(), 0);
}
