//! # perceus-repro
//!
//! A from-scratch Rust reproduction of *Perceus: Garbage Free Reference
//! Counting with Reuse* (Reinking, Xie, de Moura, Leijen — PLDI 2021).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`perceus_core`] (re-exported as `core`) — the λ¹ IR, the Perceus insertion algorithm
//!   and every optimization pass of the paper (reuse analysis, drop
//!   specialization, dup/drop fusion, reuse specialization), plus the
//!   resource checker.
//! * [`perceus_lang`] (re-exported as `lang`) — a Koka-like surface language: lexer,
//!   parser, Hindley–Milner type inference, nested-pattern match
//!   compilation, lowering to the IR.
//! * [`perceus_runtime`] (re-exported as `runtime`) — the reference-counted heap of Fig. 7
//!   (with the thread-shared negative-count encoding of §2.7.2), an
//!   abstract machine, the standard-semantics oracle of Fig. 6, a
//!   reachability auditor for the garbage-free theorems, and the
//!   tracing-GC / arena baseline collectors.
//! * [`perceus_suite`] (re-exported as `suite`) — the paper's benchmark programs (rbtree,
//!   rbtree-ck, deriv, nqueens, cfold, the FBIP tree traversals).
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use perceus_core as core;
pub use perceus_lang as lang;
pub use perceus_runtime as runtime;
pub use perceus_suite as suite;
