//! FBIP — functional but in-place (§2.6).
//!
//! The paper contrasts Morris's pointer-threading in-order traversal
//! (Fig. 2, a subtle imperative C algorithm) with a *functional* visitor
//! program (Fig. 3) that, under Perceus reuse analysis, also runs with
//! zero allocation and zero stack — but is purely functional and adapts
//! gracefully when the tree is shared.
//!
//! This example:
//! 1. runs the Fig. 3 program and shows the traversal allocates nothing;
//! 2. implements the actual Morris algorithm (Fig. 2) in Rust over the
//!    same tree and checks both produce identical results;
//! 3. shows the graceful-persistence half: when the input tree is kept
//!    alive (shared), the same program copies instead of mutating.
//!
//! ```sh
//! cargo run --release --example fbip_morris
//! ```

use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, workload, Strategy};

// ---------------------------------------------------------------------
// Morris in-order traversal (the C code of Fig. 2, transliterated to
// Rust over an index-based tree so we can thread pointers).

#[derive(Clone, Copy)]
struct MorrisNode {
    left: Option<usize>,
    value: i64,
    right: Option<usize>,
}

/// Builds the same balanced tree as tmap.pk's `build(1, n)`.
fn build_morris(lo: i64, hi: i64, arena: &mut Vec<MorrisNode>) -> Option<usize> {
    if lo > hi {
        return None;
    }
    let mid = (lo + hi) / 2;
    let left = build_morris(lo, mid - 1, arena);
    let right = build_morris(mid + 1, hi, arena);
    arena.push(MorrisNode {
        left,
        value: mid,
        right,
    });
    Some(arena.len() - 1)
}

/// Fig. 2: in-order traversal with *no stack and no extra space*, by
/// temporarily threading right pointers through the tree.
fn morris_inorder(root: Option<usize>, arena: &mut [MorrisNode], visit: &mut impl FnMut(i64)) {
    let mut cursor = root;
    while let Some(c) = cursor {
        match arena[c].left {
            None => {
                visit(arena[c].value);
                cursor = arena[c].right;
            }
            Some(l) => {
                // Find the in-order predecessor.
                let mut pre = l;
                while let Some(r) = arena[pre].right {
                    if r == c {
                        break;
                    }
                    pre = r;
                }
                if arena[pre].right.is_none() {
                    // First visit: thread a pointer back to the cursor.
                    arena[pre].right = Some(c);
                    cursor = arena[c].left;
                } else {
                    // Second visit: restore the tree and move right.
                    visit(arena[c].value);
                    arena[pre].right = None;
                    cursor = arena[c].right;
                }
            }
        }
    }
}

/// The Fig. 3 program with the input tree used *again* after the
/// traversal — persistence forces the copying slow path.
const SHARED_SRC: &str = r#"
type tree { Tip; Bin(left: tree, value: int, right: tree) }
type visitor {
  Done
  BinR(right: tree, value: int, visit: visitor)
  BinL(left: tree, value: int, visit: visitor)
}
type direction { Up; Down }

fun tmap-fbip(f: (int) -> int, t: tree, visit: visitor, d: direction): tree {
  match d {
    Down -> match t {
      Bin(l, x, r) -> tmap-fbip(f, l, BinR(r, x, visit), Down)
      Tip -> tmap-fbip(f, Tip, visit, Up)
    }
    Up -> match visit {
      Done -> t
      BinR(r, x, v) -> tmap-fbip(f, r, BinL(t, f(x), v), Down)
      BinL(l, x, v) -> tmap-fbip(f, Bin(l, x, t), v, Up)
    }
  }
}

fun build(lo: int, hi: int): tree {
  if lo > hi then Tip
  else {
    val mid = (lo + hi) / 2
    Bin(build(lo, mid - 1), mid, build(mid + 1, hi))
  }
}

fun tsum(t: tree, acc: int): int {
  match t {
    Tip -> acc
    Bin(l, x, r) -> tsum(r, tsum(l, acc) + x)
  }
}

fun main(n: int): int {
  val t = build(1, n)
  val t2 = tmap-fbip(fn(x) { x * 2 + 1 }, t, Done, Down)
  tsum(t2, 0) + tsum(t, 0) // t still alive: the traversal must copy
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 50_000i64;

    // 1. The functional FBIP traversal of Fig. 3 under Perceus.
    let w = workload("tmap").expect("registered");
    let compiled = compile_workload(w.source, Strategy::Perceus)?;
    let out = run_workload(&compiled, Strategy::Perceus, n, RunConfig::default())?;
    // `build` allocates the tree (n Bins + 1 closure); the traversal
    // itself must be pure reuse.
    println!("FBIP tmap over a unique {n}-node tree:");
    println!(
        "  allocations = {} (the tree build itself), traversal reuses = {} \
         (3 per node: Bin→BinR→BinL→Bin), fresh allocations during \
         traversal = {}",
        out.stats.allocations,
        out.stats.reuses,
        out.stats.allocations as i64 - (n + 1),
    );
    assert_eq!(
        out.stats.allocations as i64,
        n + 1,
        "traversal must not allocate"
    );

    // 2. Morris traversal over the same tree agrees on the in-order sum
    //    of f(x) = 2x + 1 (what main computes).
    let mut arena = Vec::new();
    let root = build_morris(1, n, &mut arena);
    let mut sum = 0i64;
    morris_inorder(root, &mut arena, &mut |x| sum += 2 * x + 1);
    // The Morris loops must have restored every threaded pointer.
    println!("  Morris (Fig. 2 in Rust) sum = {sum}");
    assert_eq!(format!("{}", out.value), format!("{sum}"), "both agree");

    // 3. Graceful persistence: share the tree before mapping and the
    //    same program copies the shared spine instead of mutating.
    let compiled = compile_workload(SHARED_SRC, Strategy::Perceus)?;
    let out = run_workload(&compiled, Strategy::Perceus, 1_000, RunConfig::default())?;
    println!(
        "\nshared 1000-node tree: value = {} — allocations {} > 1001, \
         reuses {} — the program *adapted*: it copied what was shared \
         and still freed everything ({} leaks).",
        out.value, out.stats.allocations, out.stats.reuses, out.leaked_blocks
    );
    assert!(out.stats.allocations > 1_001);
    assert_eq!(out.leaked_blocks, 0);
    Ok(())
}
