//! Quickstart: compile a small functional program with Perceus, inspect
//! the generated reference-counting code (the paper's Fig. 1g shape),
//! and run it under the reference-counted heap.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use perceus_core::ir::pretty::program_to_string;
use perceus_core::{PassConfig, Pipeline};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{run_workload, Strategy};

const SRC: &str = r#"
type list<a> { Nil; Cons(head: a, tail: list<a>) }

fun map(xs: list<a>, f: (a) -> b): list<b> {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}

fun build(i: int, n: int): list<int> {
  if i >= n then Nil else Cons(i, build(i + 1, n))
}

fun sum(xs: list<int>, acc: int): int {
  match xs {
    Cons(x, xx) -> sum(xx, acc + x)
    Nil -> acc
  }
}

fun main(n: int): int {
  sum(map(build(0, n), fn(x) { x + 1 }), 0)
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Front end: parse, type check, compile matches, lower to λ¹.
    let core = perceus_lang::compile_str(SRC)?;

    // 2. The Perceus pipeline: reuse analysis, dup/drop insertion,
    //    drop/reuse specialization, fusion.
    let compiled_core = Pipeline::new(PassConfig::perceus()).run(core)?;
    println!("=== generated reference-counting code (note `is-unique`,");
    println!("=== `&xs` reuse tokens and `Cons@ru` — the paper's Fig. 1g) ===\n");
    let printed = program_to_string(&compiled_core);
    // Show just `map`, the paper's running example.
    if let Some(map_fn) = printed.split("fun map").nth(1) {
        let map_fn = map_fn.split("fun build").next().unwrap_or(map_fn);
        println!("fun map{map_fn}");
    }

    // 3. Run on the reference-counted abstract machine.
    let exe = perceus_suite::compile_workload(SRC, Strategy::Perceus)?;
    let out = run_workload(&exe, Strategy::Perceus, 100_000, RunConfig::default())?;
    println!("main(100000) = {}", out.value);
    println!("\n=== runtime statistics ===\n{}", out.stats);
    println!(
        "\nreuse rate {:.1}% — map rebuilt the list *in place*; \
         {} blocks leaked (garbage-free!)",
        out.stats.reuse_rate() * 100.0,
        out.leaked_blocks
    );
    Ok(())
}
