//! The resource checker as a debugging tool: hand-write (buggy)
//! reference-counting code and watch the linear discipline of Fig. 5
//! reject it — then see the runtime catch the same bugs dynamically
//! (deterministic use-after-free / leak detection), which is how this
//! reproduction validates the paper's soundness theorem in practice.
//!
//! ```sh
//! cargo run --example checker_demo
//! ```

use perceus_core::check::check_fun_body;
use perceus_core::ir::builder::{arm, con, ProgramBuilder};
use perceus_core::ir::Expr;

fn main() {
    let mut pb = ProgramBuilder::new();
    let (_, cs) = pb.data("list", &[("Nil", 0), ("Cons", 2)]);
    let cons = cs[1];

    // --- Bug 1: double consumption (a use-after-free in the making).
    let xs = pb.fresh("xs");
    let body = con(
        cons,
        vec![Expr::Var(xs.clone()), Expr::Var(xs.clone())], // xs twice!
    );
    let verdict = check_fun_body(std::slice::from_ref(&xs), &body).unwrap_err();
    println!("double use     → rejected: {verdict}");

    // --- Bug 2: a leak (parameter never consumed).
    let ys = pb.fresh("ys");
    let body = Expr::int(42);
    let verdict = check_fun_body(std::slice::from_ref(&ys), &body).unwrap_err();
    println!("leak           → rejected: {verdict}");

    // --- Bug 3: dup after the value died.
    let zs = pb.fresh("zs");
    let body = Expr::drop_(zs.clone(), Expr::dup(zs.clone(), Expr::Var(zs.clone())));
    let verdict = check_fun_body(std::slice::from_ref(&zs), &body).unwrap_err();
    println!("dup after drop → rejected: {verdict}");

    // --- Bug 4: branches that disagree (one arm leaks).
    let ws = pb.fresh("ws");
    let h = pb.fresh("h");
    let t = pb.fresh("t");
    let body = Expr::Match {
        scrutinee: ws.clone(),
        arms: vec![arm(
            cons,
            vec![h.clone(), t.clone()],
            // consumes the scrutinee…
            Expr::drop_(ws.clone(), Expr::int(1)),
        )],
        // …but the default arm forgets to.
        default: Some(Box::new(Expr::int(0))),
    };
    let verdict = check_fun_body(std::slice::from_ref(&ws), &body).unwrap_err();
    println!("unbalanced arms→ rejected: {verdict}");

    // --- And the fixed version passes.
    let vs = pb.fresh("vs");
    let h2 = pb.fresh("h2");
    let t2 = pb.fresh("t2");
    let body = Expr::Match {
        scrutinee: vs.clone(),
        arms: vec![arm(
            cons,
            vec![h2, t2],
            Expr::drop_(vs.clone(), Expr::int(1)),
        )],
        default: Some(Box::new(Expr::drop_(vs.clone(), Expr::int(0)))),
    };
    check_fun_body(std::slice::from_ref(&vs), &body).expect("balanced code is accepted");
    println!("fixed version  → accepted ✓");

    // --- The same protection exists at runtime: the generation-checked
    // heap turns a use-after-free into an error, never corruption.
    use perceus_core::ir::CtorId;
    use perceus_runtime::heap::{BlockTag, Heap, ReclaimMode};
    use perceus_runtime::{RuntimeError, Value};
    let mut heap = Heap::new(ReclaimMode::Rc);
    let addr = heap.alloc(BlockTag::Ctor(CtorId(3)), Box::new([Value::Int(7)]));
    heap.drop_value(Value::Ref(addr)).unwrap();
    match heap.dup(Value::Ref(addr)) {
        Err(RuntimeError::UseAfterFree(a)) => {
            println!("runtime        → dup of freed {a} detected deterministically ✓")
        }
        other => panic!("expected detection, got {other:?}"),
    }
}
