//! Red-black tree insertion (Okasaki's algorithm, Appendix A of the
//! paper) — the paper's flagship result: with reuse analysis and reuse
//! specialization, the *purely functional* rebalancing algorithm adapts
//! at runtime into an in-place mutating one, with no allocation on the
//! fast path (§2.5).
//!
//! This example runs the `rbtree` benchmark under all five strategies
//! and prints a one-benchmark edition of Fig. 9.
//!
//! ```sh
//! cargo run --release --example rbtree_reuse
//! ```

use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, workload, Strategy};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload("rbtree").expect("registered workload");
    let n = 30_000;
    println!("rbtree: {n} insertions into a red-black tree\n");
    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "strategy", "time", "result", "allocs", "reuses", "rc-ops", "peak-words"
    );
    let mut base_time = None;
    for s in Strategy::ALL {
        let compiled = compile_workload(w.source, s)?;
        let start = Instant::now();
        let out = run_workload(&compiled, s, n, RunConfig::default())?;
        let t = start.elapsed().as_secs_f64();
        let base = *base_time.get_or_insert(t);
        println!(
            "{:<16} {:>7.2}s {:>9} {:>10} {:>10} {:>10} {:>12}   ({:.2}x, {})",
            s.label(),
            t,
            format!("{}", out.value),
            out.stats.allocations,
            out.stats.reuses,
            out.stats.rc_ops(),
            out.stats.peak_live_words,
            t / base,
            s.paper_column(),
        );
    }

    // The §2.5 claim, quantified: with reuse specialization the fast
    // path skips the unchanged field writes.
    let compiled = compile_workload(w.source, Strategy::Perceus)?;
    let out = run_workload(&compiled, Strategy::Perceus, n, RunConfig::default())?;
    println!(
        "\nreuse specialization skipped {} of {} field writes ({:.1}%) — \
         \"only its left child is re-assigned\" (§2.5)",
        out.stats.skipped_writes,
        out.stats.skipped_writes + out.stats.field_writes,
        100.0 * out.stats.skipped_writes as f64
            / (out.stats.skipped_writes + out.stats.field_writes) as f64
    );
    println!(
        "in-place reuse served {:.1}% of all constructions; the heap is \
         empty at exit ({} leaks).",
        out.stats.reuse_rate() * 100.0,
        out.leaked_blocks
    );
    Ok(())
}
