//! `pkc` — a compiler-explorer CLI for the Perceus pipeline.
//!
//! Reads a surface-language program and shows the core IR after each
//! stage: lowering, reuse analysis, dup/drop insertion, specialization
//! and fusion — then optionally runs it.
//!
//! ```sh
//! # explore the passes on a file
//! cargo run --example pkc -- crates/suite/programs/rbtree.pk --stages
//!
//! # run main(n) under a strategy
//! cargo run --release --example pkc -- crates/suite/programs/rbtree.pk --run 1000 --strategy perceus
//! ```

use perceus_core::ir::pretty::program_to_string;
use perceus_core::passes::{drop_spec, fuse, inline, insert, normalize, reuse, reuse_spec};
use perceus_runtime::machine::RunConfig;
use perceus_suite::{compile_workload, run_workload, Strategy};

fn usage() -> ! {
    eprintln!(
        "usage: pkc FILE [--stages] [--run N] [--strategy NAME] [--trace]\n\
         strategies: perceus (default), perceus-no-opt, scoped-rc, tracing-gc, arena"
    );
    std::process::exit(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut stages = false;
    let mut run_n: Option<i64> = None;
    let mut trace = false;
    let mut strategy = Strategy::Perceus;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stages" => stages = true,
            "--trace" => trace = true,
            "--run" => {
                run_n = Some(
                    it.next()
                        .unwrap_or_else(|| usage())
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--strategy" => {
                let name = it.next().unwrap_or_else(|| usage());
                strategy = Strategy::ALL
                    .into_iter()
                    .find(|s| s.label() == name)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if file.is_none() => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let src = std::fs::read_to_string(&file)?;

    if stages || run_n.is_none() {
        let mut p = match perceus_lang::compile_str_checked(&src) {
            Ok((p, warnings)) => {
                for w in &warnings {
                    eprintln!("{}", w.render(&src));
                }
                p
            }
            Err(e) => {
                eprintln!("{}", e.render(&src));
                std::process::exit(1);
            }
        };
        normalize::normalize_program(&mut p);
        println!("=== 1. lowered core (ANF) ===\n{}", program_to_string(&p));
        inline::inline_program(&mut p, &inline::InlineConfig::default());
        normalize::normalize_program(&mut p);
        reuse::reuse_program(&mut p, &reuse::ReuseConfig::default());
        println!(
            "=== 2. after inlining + reuse analysis (Fig. 1e: @tokens) ===\n{}",
            program_to_string(&p)
        );
        insert::insert_program(&mut p)?;
        println!(
            "=== 3. after Perceus insertion (Fig. 1b: dup/drop) ===\n{}",
            program_to_string(&p)
        );
        reuse_spec::reuse_spec_program(&mut p);
        drop_spec::drop_spec_program(&mut p, &drop_spec::DropSpecConfig::default());
        fuse::fuse_program(&mut p);
        println!(
            "=== 4. after specialization + fusion (Fig. 1g: is-unique fast paths) ===\n{}",
            program_to_string(&p)
        );
    }

    if let Some(n) = run_n {
        let compiled = compile_workload(&src, strategy)?;
        let config = RunConfig::new().with_trace_capacity(if trace { Some(64) } else { None });
        let start = std::time::Instant::now();
        let out = run_workload(&compiled, strategy, n, config)?;
        println!("main({n}) = {}  [{:?}]", out.value, start.elapsed());
        for line in out.output {
            println!("println: {line}");
        }
        println!("{}", out.stats);
        if strategy.is_rc() {
            println!("leaked blocks: {}", out.leaked_blocks);
        }
        if let Some(tail) = out.trace_tail {
            println!("--- last reference-count events ---\n{tail}");
        }
    }
    Ok(())
}
