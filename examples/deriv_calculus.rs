//! Symbolic differentiation (the `deriv` benchmark of §4).
//!
//! Shows the structured result of a symbolic computation — the machine's
//! heap values are read back as trees — and reproduces the benchmark
//! observation that heavy *sharing* (the product rule mentions each
//! subterm twice) pushes reuse analysis onto its slow path, narrowing
//! the gap between full Perceus and no-opt.
//!
//! ```sh
//! cargo run --release --example deriv_calculus
//! ```

use perceus_runtime::machine::{DeepValue, RunConfig};
use perceus_suite::{compile_workload, run_workload, workload, Strategy};

/// A tiny variant of deriv.pk whose main returns the derivative *term*
/// itself, so we can pretty-print it.
const SHOW_SRC: &str = r#"
type expr {
  Num(n: int)
  Vr(id: int)
  Add(a: expr, b: expr)
  Mul(a: expr, b: expr)
  Pow(base: expr, n: int)
}

fun mk-add(a: expr, b: expr): expr {
  match a {
    Num(x) -> match b {
      Num(y) -> Num(x + y)
      _ -> if x == 0 then b else Add(a, b)
    }
    _ -> match b {
      Num(y) -> if y == 0 then a else Add(a, b)
      _ -> Add(a, b)
    }
  }
}

fun mk-mul(a: expr, b: expr): expr {
  match a {
    Num(x) -> match b {
      Num(y) -> Num(x * y)
      _ -> if x == 0 then Num(0) elif x == 1 then b else Mul(a, b)
    }
    _ -> match b {
      Num(y) -> if y == 0 then Num(0) elif y == 1 then a else Mul(a, b)
      _ -> Mul(a, b)
    }
  }
}

fun mk-pow(base: expr, n: int): expr {
  if n == 0 then Num(1) elif n == 1 then base else Pow(base, n)
}

fun d(x: int, e: expr): expr {
  match e {
    Num(_) -> Num(0)
    Vr(y) -> if x == y then Num(1) else Num(0)
    Add(a, b) -> mk-add(d(x, a), d(x, b))
    Mul(a, b) -> mk-add(mk-mul(a, d(x, b)), mk-mul(d(x, a), b))
    Pow(base, n) -> mk-mul(mk-mul(Num(n), mk-pow(base, n - 1)), d(x, base))
  }
}

fun main(n: int): expr {
  // d/dx (x² + 3x)ⁿ
  d(0, Pow(Add(Pow(Vr(0), 2), Mul(Num(3), Vr(0))), n))
}
"#;

/// Renders an `expr` heap value as infix text.
fn render(e: &DeepValue) -> String {
    match e {
        DeepValue::Ctor(name, fields) => match (name.as_str(), fields.as_slice()) {
            ("Num", [DeepValue::Int(n)]) => n.to_string(),
            ("Vr", [DeepValue::Int(0)]) => "x".to_string(),
            ("Vr", [DeepValue::Int(i)]) => format!("x{i}"),
            ("Add", [a, b]) => format!("({} + {})", render(a), render(b)),
            ("Mul", [a, b]) => format!("{}·{}", render(a), render(b)),
            ("Pow", [a, DeepValue::Int(n)]) => format!("{}^{n}", render(a)),
            _ => format!("{e}"),
        },
        other => format!("{other}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A readable derivative.
    let compiled = compile_workload(SHOW_SRC, Strategy::Perceus)?;
    let out = run_workload(&compiled, Strategy::Perceus, 3, RunConfig::default())?;
    println!("d/dx (x² + 3x)³ = {}", render(&out.value));
    assert_eq!(out.leaked_blocks, 0);

    // 2. The benchmark shape: sharing narrows the reuse advantage.
    let w = workload("deriv").expect("registered");
    let n = 192;
    println!("\nderiv benchmark (n = {n}): strategy comparison");
    for s in [Strategy::Perceus, Strategy::PerceusNoOpt, Strategy::Gc] {
        let compiled = compile_workload(w.source, s)?;
        let start = std::time::Instant::now();
        let out = run_workload(&compiled, s, n, RunConfig::default())?;
        println!(
            "  {:<16} {:>7.2?}  result={} allocs={} reuses={} ({:.1}%)",
            s.label(),
            start.elapsed(),
            out.value,
            out.stats.allocations,
            out.stats.reuses,
            out.stats.reuse_rate() * 100.0
        );
    }
    println!(
        "\nthe paper (§4, deriv): \"the optimizations are less effective\" \
         under sharing — the reuse rate above is far below rbtree's ~90%."
    );
    Ok(())
}
